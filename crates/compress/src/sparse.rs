use eugene_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A compressed-sparse-row matrix, the storage format edge pruning
/// produces.
///
/// Exists so the repository can *measure* the paper's claim that sparse
/// algebra underperforms dense algebra at moderate sparsity: the
/// `compress_ablation` bench times [`CsrMatrix::matvec`] against dense
/// [`Matrix::matvec`] across sparsity levels.
///
/// # Examples
///
/// ```
/// use eugene_compress::CsrMatrix;
/// use eugene_tensor::Matrix;
///
/// let dense = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
/// let sparse = CsrMatrix::from_dense(&dense, 0.0);
/// assert_eq!(sparse.nnz(), 2);
/// assert_eq!(sparse.matvec(&[3.0, 4.0]), vec![3.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense one, dropping entries whose
    /// absolute value is `<= threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or NaN.
    pub fn from_dense(dense: &Matrix, threshold: f32) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        let (rows, cols) = dense.shape();
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v.abs() > threshold {
                    col_indices.push(c);
                    values.push(v);
                }
            }
            row_offsets.push(values.len());
        }
        Self {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Fraction of entries stored, `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Sparse matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.shape().1`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        let mut out = vec![0.0; self.rows];
        for (r, out_r) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.row_offsets[r]..self.row_offsets[r + 1] {
                acc += self.values[i] * v[self.col_indices[i]];
            }
            *out_r = acc;
        }
        out
    }

    /// Transposed sparse product `v^T * A` (used when the pruned weight
    /// matrix is `in x out` and activations multiply from the left).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.shape().0`.
    pub fn vecmat(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.rows, "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        for (r, &x) in v.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            for i in self.row_offsets[r]..self.row_offsets[r + 1] {
                out[self.col_indices[i]] += self.values[i] * x;
            }
        }
        out
    }

    /// Reconstructs the dense form (testing/inspection).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_offsets[r]..self.row_offsets[r + 1] {
                out[(r, self.col_indices[i])] = self.values[i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::{seeded_rng, xavier_uniform};

    #[test]
    fn round_trip_preserves_surviving_entries() {
        let dense = Matrix::from_rows(&[&[0.5, -0.01, 0.0], &[0.0, 0.9, -0.7]]);
        let sparse = CsrMatrix::from_dense(&dense, 0.05);
        let back = sparse.to_dense();
        assert_eq!(back[(0, 0)], 0.5);
        assert_eq!(back[(0, 1)], 0.0, "small entry pruned");
        assert_eq!(back[(1, 2)], -0.7);
        assert_eq!(sparse.nnz(), 3);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut rng = seeded_rng(1);
        let dense = xavier_uniform(16, 12, &mut rng);
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        let v: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
        let got = sparse.matvec(&v);
        let want = dense.matvec(&v);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn vecmat_matches_dense_transpose() {
        let mut rng = seeded_rng(2);
        let dense = xavier_uniform(8, 6, &mut rng);
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        let v: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
        let got = sparse.vecmat(&v);
        let want = dense.transpose().matvec(&v);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn density_reflects_pruning() {
        let dense = Matrix::from_rows(&[&[1.0, 0.001], &[0.001, 1.0]]);
        let sparse = CsrMatrix::from_dense(&dense, 0.01);
        assert!((sparse.density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let sparse = CsrMatrix::from_dense(&Matrix::zeros(0, 0), 0.0);
        assert_eq!(sparse.nnz(), 0);
        assert_eq!(sparse.density(), 0.0);
    }
}
