use serde::{Deserialize, Serialize};

/// Exponentially decayed per-class frequency counts, the signal behind
/// the paper's caching questions: "when exactly should the system decide
/// that an item or set of items are frequent?" (§II-B).
///
/// Each observation adds 1 to its class after multiplying every count by
/// the decay factor, so recent traffic dominates and a shifting input
/// distribution ages the old cache out naturally.
///
/// # Examples
///
/// ```
/// use eugene_compress::ClassFrequencyTracker;
///
/// let mut tracker = ClassFrequencyTracker::new(3, 0.9);
/// for _ in 0..50 { tracker.record(1); }
/// assert_eq!(tracker.frequent_classes(0.5), vec![1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassFrequencyTracker {
    counts: Vec<f64>,
    decay: f64,
    observations: u64,
}

impl ClassFrequencyTracker {
    /// Creates a tracker over `num_classes` classes with per-observation
    /// decay `decay`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `decay` is outside `(0, 1]`.
    pub fn new(num_classes: usize, decay: f64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        Self {
            counts: vec![0.0; num_classes],
            decay,
            observations: 0,
        }
    }

    /// Records one classified input.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn record(&mut self, class: usize) {
        assert!(class < self.counts.len(), "class {class} out of range");
        for c in &mut self.counts {
            *c *= self.decay;
        }
        self.counts[class] += 1.0;
        self.observations += 1;
    }

    /// Total observations recorded (undecayed).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The decayed share of traffic attributed to `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn share(&self, class: usize) -> f64 {
        assert!(class < self.counts.len(), "class {class} out of range");
        let total: f64 = self.counts.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.counts[class] / total
    }

    /// Classes whose decayed traffic share is at least `min_share`,
    /// most frequent first.
    pub fn frequent_classes(&self, min_share: f64) -> Vec<usize> {
        let total: f64 = self.counts.iter().sum();
        if total == 0.0 {
            return Vec::new();
        }
        let mut frequent: Vec<(usize, f64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c / total >= min_share)
            .map(|(i, &c)| (i, c))
            .collect();
        frequent.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        frequent.into_iter().map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_set_orders_by_share() {
        let mut t = ClassFrequencyTracker::new(4, 1.0);
        for _ in 0..10 {
            t.record(2);
        }
        for _ in 0..5 {
            t.record(0);
        }
        t.record(3);
        assert_eq!(t.frequent_classes(0.2), vec![2, 0]);
        assert!((t.share(2) - 10.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn decay_forgets_old_traffic() {
        let mut t = ClassFrequencyTracker::new(2, 0.8);
        for _ in 0..30 {
            t.record(0);
        }
        for _ in 0..30 {
            t.record(1);
        }
        // Recent class-1 traffic should dominate despite equal raw counts.
        assert!(t.share(1) > 0.9, "share {}", t.share(1));
    }

    #[test]
    fn empty_tracker_has_no_frequent_classes() {
        let t = ClassFrequencyTracker::new(3, 0.9);
        assert!(t.frequent_classes(0.1).is_empty());
        assert_eq!(t.share(0), 0.0);
        assert_eq!(t.observations(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_class_panics() {
        ClassFrequencyTracker::new(2, 0.9).record(2);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn bad_decay_rejected() {
        ClassFrequencyTracker::new(2, 0.0);
    }
}
