use eugene_nn::{Linear, Precision, StagedNetwork};
use eugene_tensor::quantize_symmetric;
use serde::{Deserialize, Serialize};

/// Per-stage outcome of quantizing a staged network (see
/// [`quantize_stages`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageQuantization {
    /// Trunk stage index.
    pub stage: usize,
    /// Precision the stage now serves at.
    pub precision: Precision,
    /// `Linear` layers carrying a quantized pack in this stage.
    pub quantized_layers: usize,
    /// Weight bytes of the stage's `Linear` layers at f32.
    pub f32_bytes: usize,
    /// Heap bytes of the installed i8 packs (0 for f32 stages). Packs
    /// keep both a row-major i8 copy and kernel panels, so this is the
    /// true serving footprint, not just `weights / 4`.
    pub packed_bytes: usize,
    /// Largest per-element reconstruction error `max |w - s·q(w)|`
    /// across the stage's quantized weights.
    pub max_weight_error: f32,
    /// Largest per-tensor quantization scale among the stage's layers.
    /// Symmetric rounding bounds the element error by `scale / 2`.
    pub max_scale: f32,
}

/// Summary of a [`quantize_stages`] call: what got packed, how many
/// bytes the i8 representation holds relative to f32 weights, and how
/// far the quantized weights sit from the originals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizationReport {
    /// One entry per trunk stage, in stage order.
    pub stages: Vec<StageQuantization>,
}

impl QuantizationReport {
    /// f32 weight bytes across all stages.
    pub fn total_f32_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.f32_bytes).sum()
    }

    /// Installed pack bytes across all stages.
    pub fn total_packed_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.packed_bytes).sum()
    }

    /// Weight bytes the quantized stages no longer need at serving
    /// time: their f32 weights stay resident for training, but a
    /// serving-only deployment ships packs instead of f32 tensors.
    pub fn serving_bytes_saved(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.precision == Precision::Int8)
            .map(|s| s.f32_bytes.saturating_sub(s.packed_bytes))
            .sum()
    }

    /// Largest reconstruction error across every quantized stage.
    pub fn max_weight_error(&self) -> f32 {
        self.stages
            .iter()
            .map(|s| s.max_weight_error)
            .fold(0.0, f32::max)
    }
}

/// Switches the listed trunk stages of `network` to quantized (i8)
/// serving — the §II-B reduction family's third lever, next to edge and
/// node pruning: instead of removing weights, it shrinks each one to a
/// byte and runs the i8 kernel tier. Stages not listed revert to f32;
/// exit heads always stay f32. Returns a [`QuantizationReport`]
/// describing footprint and reconstruction error per stage.
///
/// # Examples
///
/// ```
/// use eugene_compress::quantize_stages;
/// use eugene_nn::{Precision, StagedNetwork, StagedNetworkConfig};
/// use eugene_tensor::seeded_rng;
///
/// let config = StagedNetworkConfig::three_stage(8, 3);
/// let mut net = StagedNetwork::new(&config, &mut seeded_rng(0));
/// let report = quantize_stages(&mut net, &[0, 1]);
/// assert_eq!(net.stage_precision(0), Precision::Int8);
/// assert_eq!(net.stage_precision(2), Precision::F32);
/// // Every element sits within half a quantization step of its original.
/// for stage in &report.stages {
///     assert!(stage.max_weight_error <= stage.max_scale / 2.0 + f32::EPSILON);
/// }
/// ```
pub fn quantize_stages(network: &mut StagedNetwork, stages: &[usize]) -> QuantizationReport {
    network.quantize_stages(stages);
    let report_stages = (0..network.num_stages())
        .map(|s| {
            let mut entry = StageQuantization {
                stage: s,
                precision: network.stage_precision(s),
                quantized_layers: 0,
                f32_bytes: 0,
                packed_bytes: 0,
                max_weight_error: 0.0,
                max_scale: 0.0,
            };
            for layer in network.stages()[s].layers() {
                let Some(lin) = layer.as_any().downcast_ref::<Linear>() else {
                    continue;
                };
                entry.f32_bytes += lin.weights().len() * 4;
                let Some(pack) = lin.quantized_pack() else {
                    continue;
                };
                entry.quantized_layers += 1;
                entry.packed_bytes += pack.packed_bytes();
                entry.max_scale = entry.max_scale.max(pack.scale());
                let (q, scale) = quantize_symmetric(lin.weights().as_slice());
                for (&w, &qv) in lin.weights().as_slice().iter().zip(&q) {
                    let err = (w - f32::from(qv) * scale).abs();
                    entry.max_weight_error = entry.max_weight_error.max(err);
                }
            }
            entry
        })
        .collect();
    QuantizationReport {
        stages: report_stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_nn::StagedNetworkConfig;
    use eugene_tensor::seeded_rng;

    fn network() -> StagedNetwork {
        let config = StagedNetworkConfig {
            input_dim: 12,
            num_classes: 4,
            stage_widths: vec![vec![16, 16], vec![16], vec![8]],
            dropout: 0.0,
            input_skip: false,
        };
        StagedNetwork::new(&config, &mut seeded_rng(9))
    }

    #[test]
    fn report_covers_every_stage_with_tagged_precisions() {
        let mut net = network();
        let report = quantize_stages(&mut net, &[0, 2]);
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stages[0].precision, Precision::Int8);
        assert_eq!(report.stages[1].precision, Precision::F32);
        assert_eq!(report.stages[2].precision, Precision::Int8);
        assert_eq!(report.stages[0].quantized_layers, 2);
        assert_eq!(report.stages[1].quantized_layers, 0);
        assert_eq!(report.stages[1].packed_bytes, 0);
        assert!(report.stages[1].f32_bytes > 0, "f32 stages still counted");
    }

    #[test]
    fn quantization_error_is_bounded_by_half_a_step() {
        let mut net = network();
        let report = quantize_stages(&mut net, &[0, 1, 2]);
        for stage in &report.stages {
            assert!(stage.max_scale > 0.0);
            assert!(
                stage.max_weight_error <= stage.max_scale / 2.0 + f32::EPSILON,
                "stage {}: error {} vs scale {}",
                stage.stage,
                stage.max_weight_error,
                stage.max_scale
            );
        }
        assert!(report.max_weight_error() > 0.0, "real rounding happened");
    }

    #[test]
    fn packs_shrink_the_serving_footprint() {
        let mut net = network();
        let report = quantize_stages(&mut net, &[0, 1, 2]);
        // The pack holds i8 data plus panels and column sums; it must
        // still be well under the f32 weights it replaces.
        assert!(report.total_packed_bytes() < report.total_f32_bytes());
        assert!(report.serving_bytes_saved() > 0);

        let restored = quantize_stages(&mut net, &[]);
        assert_eq!(restored.total_packed_bytes(), 0);
        assert_eq!(restored.serving_bytes_saved(), 0);
        assert_eq!(net.stage_precisions(), vec![Precision::F32; 3]);
    }
}
