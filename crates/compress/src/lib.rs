//! Model reduction and reduced-model caching (paper §II-B).
//!
//! The paper contrasts two ways to shrink a trained network for
//! resource-limited devices:
//!
//! 1. **Edge pruning** — zero out low-magnitude weights, producing a
//!    sparse matrix. The paper notes that "these reductions do not scale
//!    proportionally to the fraction of zero entries ... because sparse
//!    matrix algebra is not as efficient as dense matrix algebra."
//!    [`EdgePruned`] implements this baseline over a CSR representation
//!    ([`CsrMatrix`]) so the inefficiency can be measured.
//! 2. **Node pruning** (the DeepIoT approach, the paper's \[5\]) — remove
//!    whole hidden units, producing a *smaller dense* network.
//!    [`prune_nodes`] rewrites a [`eugene_nn::StagedNetwork`] this way.
//! 3. **Quantization** — keep the architecture but shrink each weight to
//!    a byte and serve the stage on the i8 kernel tier.
//!    [`quantize_stages`] switches trunk stages over and reports the
//!    footprint and reconstruction error per stage.
//!
//! On top of reduction, §II-B sketches **model caching**: when a device's
//! inputs concentrate on a few frequent classes, the server retrains a
//! small model over just those classes (plus an "other" bucket), ships it
//! to the device, and treats an "other"/low-confidence answer as a cache
//! miss escalated to the full server model. [`ClassFrequencyTracker`],
//! [`CachedModel`], and [`ModelCache`] implement that loop.
//!
//! # Examples
//!
//! ```
//! use eugene_compress::ClassFrequencyTracker;
//!
//! let mut tracker = ClassFrequencyTracker::new(10, 0.99);
//! for _ in 0..80 { tracker.record(3); }
//! for _ in 0..15 { tracker.record(7); }
//! for c in 0..5 { tracker.record(c); }
//! let frequent = tracker.frequent_classes(0.10);
//! assert!(frequent.contains(&3));
//! assert!(!frequent.contains(&0));
//! ```

mod cache;
mod edge_prune;
mod node_prune;
mod quantize;
mod sparse;
mod tracker;

pub use cache::{
    evaluate_cache, skewed_stream, CacheDecision, CachedModel, CachedModelConfig, ModelCache,
    ModelCacheStats,
};
pub use edge_prune::{prune_edges, EdgePruned};
pub use node_prune::prune_nodes;
pub use quantize::{quantize_stages, QuantizationReport, StageQuantization};
pub use sparse::CsrMatrix;
pub use tracker::ClassFrequencyTracker;
