use crate::CsrMatrix;
use eugene_nn::Linear;
use eugene_tensor::Matrix;

/// A [`Linear`] layer with low-magnitude edges removed, stored sparsely —
/// the baseline reduction technique the paper argues *against* (§II-B).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePruned {
    weights: CsrMatrix,
    bias: Vec<f32>,
}

impl EdgePruned {
    /// The sparse weight matrix.
    pub fn weights(&self) -> &CsrMatrix {
        &self.weights
    }

    /// Fraction of original weights retained.
    pub fn density(&self) -> f64 {
        self.weights.density()
    }

    /// Applies the pruned layer to one activation vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the layer's input width.
    pub fn infer_one(&self, input: &[f32]) -> Vec<f32> {
        let mut out = self.weights.vecmat(input);
        for (o, b) in out.iter_mut().zip(&self.bias) {
            *o += b;
        }
        out
    }

    /// Applies the pruned layer to a batch.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), self.bias.len());
        for r in 0..input.rows() {
            let row = self.infer_one(input.row(r));
            out.row_mut(r).copy_from_slice(&row);
        }
        out
    }
}

/// Prunes the smallest-magnitude fraction `prune_fraction` of a linear
/// layer's weights, returning the sparse layer.
///
/// # Panics
///
/// Panics unless `0.0 <= prune_fraction < 1.0`.
pub fn prune_edges(layer: &Linear, prune_fraction: f64) -> EdgePruned {
    assert!(
        (0.0..1.0).contains(&prune_fraction),
        "prune_fraction must be in [0, 1), got {prune_fraction}"
    );
    let weights = layer.weights();
    let mut magnitudes: Vec<f32> = weights.as_slice().iter().map(|w| w.abs()).collect();
    magnitudes.sort_by(f32::total_cmp);
    let cut = (magnitudes.len() as f64 * prune_fraction) as usize;
    let threshold = if cut == 0 { 0.0 } else { magnitudes[cut - 1] };
    EdgePruned {
        weights: CsrMatrix::from_dense(weights, threshold),
        bias: layer.bias().row(0).to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_nn::Layer;
    use eugene_tensor::seeded_rng;

    fn layer() -> Linear {
        Linear::new(24, 16, &mut seeded_rng(3))
    }

    #[test]
    fn zero_fraction_keeps_exact_behavior() {
        let dense = layer();
        let pruned = prune_edges(&dense, 0.0);
        let x = Matrix::filled(2, 24, 0.3);
        let want = dense.infer(&x);
        let got = pruned.infer(&x);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn density_tracks_prune_fraction() {
        let dense = layer();
        let pruned = prune_edges(&dense, 0.6);
        assert!(
            (pruned.density() - 0.4).abs() < 0.05,
            "density {} after pruning 60%",
            pruned.density()
        );
    }

    #[test]
    fn moderate_pruning_keeps_outputs_close() {
        let dense = layer();
        let pruned = prune_edges(&dense, 0.3);
        let x = Matrix::filled(1, 24, 0.5);
        let want = dense.infer(&x);
        let got = pruned.infer(&x);
        let err: f32 = got
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .map(|(g, w)| (g - w).abs())
            .sum::<f32>()
            / 16.0;
        let scale = want.max_abs().max(1e-3);
        assert!(
            err / scale < 0.5,
            "mean abs output error {err} too large vs scale {scale}"
        );
    }

    #[test]
    fn heavier_pruning_degrades_more() {
        let dense = layer();
        let x = Matrix::filled(1, 24, 0.5);
        let want = dense.infer(&x);
        let err = |fraction: f64| -> f32 {
            let pruned = prune_edges(&dense, fraction);
            pruned
                .infer(&x)
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .map(|(g, w)| (g - w).abs())
                .sum()
        };
        assert!(err(0.8) > err(0.2));
    }

    #[test]
    #[should_panic(expected = "prune_fraction")]
    fn full_pruning_rejected() {
        prune_edges(&layer(), 1.0);
    }
}
