//! Event-driven latency regressions: the gateway must react to connects,
//! stage progress, and connection exits when they *happen*, not on the
//! next edge of some internal polling tick.

mod common;

use common::start_gateway;
use eugene_net::wire::{self, Frame, FrameBuffer, PROTOCOL_VERSION};
use eugene_net::{ClientConfig, GatewayConfig, MultiplexClient};
use eugene_serve::RuntimeConfig;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn fast_runtime(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        num_workers: workers,
        ..RuntimeConfig::default()
    }
}

fn open_config() -> GatewayConfig {
    GatewayConfig {
        high_water: 1_000_000,
        hard_cap: 2_000_000,
        ..GatewayConfig::default()
    }
}

/// Connects and completes the Hello/HelloAck handshake, returning the
/// stream (so the connection stays open until the caller drops it).
fn handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            max_version: PROTOCOL_VERSION,
        },
    )
    .expect("hello");
    let mut buffer = FrameBuffer::new();
    loop {
        match buffer.poll(&mut stream).expect("read ack") {
            Some(Frame::HelloAck { .. }) => return stream,
            Some(other) => panic!("expected HelloAck, got {other:?}"),
            None => {}
        }
    }
}

/// Regression for the accept loop's old fixed 5ms `WouldBlock` sleep: a
/// connect against an idle gateway paid up to a full sleep period before
/// being accepted. Thirty sequential handshakes cost ~75ms of
/// accumulated sleep under the old loop; with the accept thread parked
/// in a poller they complete in a few milliseconds total.
#[test]
fn idle_gateway_accepts_without_a_sleep_tick() {
    const CONNECTS: usize = 30;
    let gateway = start_gateway(vec![0.9], Duration::ZERO, fast_runtime(2), open_config());
    let addr = gateway.local_addr();

    // Warm-up: first connect pays thread-pool and allocator cold costs.
    drop(handshake(addr));

    let started = Instant::now();
    for _ in 0..CONNECTS {
        // Sequential: each handshake pays the full accept wakeup latency
        // before the next connect begins.
        drop(handshake(addr));
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(60),
        "{CONNECTS} sequential connects took {elapsed:?} — the accept \
         loop is sleeping between polls instead of waiting for readiness"
    );
}

/// `StageUpdate`s must stream while later stages are still executing —
/// arriving event-driven within a stage time of being produced, never
/// batched up with the `Final`.
#[test]
fn stage_updates_stream_during_execution() {
    let stage_time = Duration::from_millis(60);
    let gateway = start_gateway(
        vec![0.2, 0.4, 0.95],
        stage_time,
        fast_runtime(1),
        open_config(),
    );
    let mut stream = handshake(gateway.local_addr());
    let started = Instant::now();
    wire::write_frame(
        &mut stream,
        &Frame::Submit(wire::SubmitRequest {
            client_tag: 1,
            class: "stream".to_owned(),
            budget_ms: 5_000,
            want_progress: true,
            payload: vec![3.0],
            routing_key: None,
            model: None,
            tenant: None,
            epoch: None,
        }),
    )
    .expect("submit");

    let mut buffer = FrameBuffer::new();
    let mut update_arrivals = Vec::new();
    let final_at = loop {
        match buffer.poll(&mut stream).expect("read frame") {
            Some(Frame::StageUpdate { .. }) => update_arrivals.push(started.elapsed()),
            Some(Frame::Final { .. }) => break started.elapsed(),
            Some(other) => panic!("unexpected frame {other:?}"),
            None => {}
        }
    };

    assert_eq!(update_arrivals.len(), 3, "one update per stage");
    // Stage 0 finishes after ~one stage time; its update must arrive
    // well before the remaining two stages complete.
    assert!(
        update_arrivals[0] < stage_time * 2,
        "first StageUpdate arrived at {:?} — updates are being held back \
         instead of streamed (Final at {final_at:?})",
        update_arrivals[0]
    );
    assert!(
        final_at >= stage_time * 3,
        "three {stage_time:?} stages cannot finish in {final_at:?}"
    );
}

/// The accept path must stay live while an existing connection is wedged
/// mid-request: new connections handshake promptly, and once the slow
/// connection finishes, the gateway's tracked set drains without waiting
/// for another connect to trigger a reap pass.
#[test]
fn accepts_stay_live_while_a_connection_is_wedged() {
    let stage_time = Duration::from_millis(300);
    let gateway = start_gateway(vec![0.95], stage_time, fast_runtime(2), open_config());
    let addr = gateway.local_addr();

    // Wedge connection A: one slow in-flight request.
    let client = MultiplexClient::new(addr, ClientConfig::default()).expect("resolve");
    let pending = client
        .submit("wedge", &[7.0], Duration::from_secs(10), false)
        .expect("submit");

    // While A is mid-stage, a burst of fresh connections must each be
    // accepted and handshaken quickly.
    let started = Instant::now();
    for i in 0..12 {
        let t = Instant::now();
        drop(handshake(addr));
        assert!(
            t.elapsed() < Duration::from_millis(100),
            "connect {i} took {:?} while another connection was wedged",
            t.elapsed()
        );
    }
    assert!(
        started.elapsed() < stage_time,
        "the whole connect burst must finish before the wedged request"
    );

    let outcome = pending.wait().expect("wedged request still answered");
    assert_eq!(outcome.predicted, Some(7));
    drop(client);

    // Exit-driven reaping: connection threads wake the accept loop when
    // they finish, so the tracked set drains with no further connects.
    let deadline = Instant::now() + Duration::from_secs(5);
    while gateway.tracked_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "{} connections still tracked after all clients closed",
            gateway.tracked_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
