//! Fault injection for the *replicated* front tier (the default
//! `FailoverPolicy::Replay`), run against BOTH gateway backends: shard
//! death must be invisible to clients — in-flight submits replay to the
//! warm standby and complete with correct payloads, exactly once — and
//! live elasticity (`add_shard` / `remove_shard` mid-load) must keep
//! every request accounted with zero client-visible errors.
//!
//! The legacy `FailoverPolicy::Reject` contract (shard death answers
//! `ShardLost`) lives in `shard_faults.rs`.

mod common;

use common::{shard_runtime, start_router};
use eugene_net::shard::{ShardConfig, ShardRouter};
use eugene_net::{
    ClientConfig, GatewayBackend, GatewayConfig, LoadgenConfig, LoadgenMode, MultiplexClient,
};
use eugene_serve::RuntimeConfig;
use std::time::{Duration, Instant};

const RAMP: [f32; 2] = [0.5, 0.95];

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        num_workers: 2,
        ..RuntimeConfig::default()
    }
}

fn shard_config(backend: GatewayBackend) -> ShardConfig {
    ShardConfig {
        // Replay is the ReplicaConfig default; the point of this suite is
        // exercising it, so no override here — a changed default would
        // fail these tests loudly.
        gateway: GatewayConfig {
            high_water: 1_000_000,
            hard_cap: 2_000_000,
            backend,
            ..GatewayConfig::default()
        },
        ..ShardConfig::default()
    }
}

fn start(shards: usize, stage_time: Duration, backend: GatewayBackend) -> ShardRouter {
    start_router(
        shards,
        RAMP.to_vec(),
        stage_time,
        runtime_config(),
        shard_config(backend),
    )
}

/// A routing key the live ring currently maps to `shard`.
fn key_on_shard(router: &ShardRouter, shard: usize) -> u64 {
    (0..100_000u64)
        .find(|&k| router.shard_for_key(k) == Some(shard))
        .expect("some key must map to every live shard")
}

/// Loadgen config with wide budgets: any reject, error, or deadline miss
/// the report shows is a real fault-handling defect, not timing noise.
fn loadgen_config(addr: String, total: usize, seed: u64) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        connections: 2,
        total_requests: total,
        rate_hz: 600.0,
        seed,
        mode: LoadgenMode::Multiplexed { concurrency: 8 },
        keyspace: Some(64),
        classes: vec![eugene_net::loadgen::ClassSpec {
            name: "replicated".to_owned(),
            budget_ms: 30_000,
            weight: 1.0,
            payload_len: 16,
        }],
        client: ClientConfig {
            // One attempt only: the tier itself must absorb the fault.
            // Any client-side retry would mask a failover bug.
            max_attempts: 1,
            ..ClientConfig::default()
        },
        ..LoadgenConfig::default()
    }
}

// ---------------------------------------------------------------------
// Transparent failover: kill a shard with staged requests in flight; all
// of them replay to the warm standby and complete. Zero ShardLost, zero
// client-visible anything.
// ---------------------------------------------------------------------

fn kill_mid_flight_is_invisible_to_clients(backend: GatewayBackend) {
    const SHARDS: usize = 3;
    const IN_FLIGHT: usize = 8;
    const VICTIM: usize = 1;
    // Slow stages so the victim's requests are reliably still staged when
    // the shard dies.
    let router = start(SHARDS, Duration::from_millis(150), backend);
    let client = MultiplexClient::new(router.local_addr(), ClientConfig::default()).unwrap();

    let victim_key = key_on_shard(&router, VICTIM);
    let group = router.replicas_for_key(victim_key);
    assert_eq!(group[0], VICTIM, "primary is the ring owner");
    let standby = group[1];
    assert_ne!(standby, VICTIM, "standby is a distinct shard");

    let doomed: Vec<_> = (0..IN_FLIGHT)
        .map(|i| {
            client
                .submit_keyed(
                    "replayed",
                    &[i as f32],
                    Duration::from_secs(30),
                    false,
                    Some(victim_key),
                )
                .expect("submit onto victim")
        })
        .collect();

    // Wait until the victim has admitted the load so the kill provably
    // lands mid-flight, then kill it.
    let victim_stats = &router.shard_stats()[VICTIM];
    let admitted_by = Instant::now() + Duration::from_secs(10);
    while (victim_stats.submitted() as usize) < IN_FLIGHT {
        assert!(
            Instant::now() < admitted_by,
            "victim never admitted the load"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(router.kill_shard(VICTIM), "victim was alive");

    // Every in-flight request completes with its payload intact — the
    // kill cost latency (a re-execution on the standby), nothing else.
    for (i, p) in doomed.into_iter().enumerate() {
        let outcome = p
            .wait()
            .unwrap_or_else(|e| panic!("request {i} surfaced the kill as {e:?}"));
        assert_eq!(outcome.predicted, Some(i as u64), "request {i} payload");
    }
    assert_eq!(
        router.shard_lost_rejects(),
        0,
        "transparent failover must not reject"
    );
    assert!(
        router.failover_replays() >= IN_FLIGHT as u64,
        "expected >= {IN_FLIGHT} replays, saw {}",
        router.failover_replays()
    );
    // The replays landed on the warm standby the ring named up front.
    assert_eq!(router.shard_for_key(victim_key), Some(standby));
    assert!(
        router.shard_stats()[standby].completed() >= IN_FLIGHT as u64,
        "standby served the replayed load"
    );
    assert_eq!(client.stale_frames(), 0, "no double answers");
    router.shutdown();
}

#[test]
fn kill_mid_flight_is_invisible_to_clients_blocking() {
    kill_mid_flight_is_invisible_to_clients(GatewayBackend::Blocking);
}

#[test]
fn kill_mid_flight_is_invisible_to_clients_readiness() {
    kill_mid_flight_is_invisible_to_clients(GatewayBackend::Readiness);
}

// ---------------------------------------------------------------------
// Regression: the reroute/kill race. Killing a shard while submits are
// being written used to double-answer (in-line retry + reader sweep both
// claiming the tag) and double-count shard_lost. Exactly-once is now
// structural (tag ownership); hammer the window 100x and require zero
// stale frames and full per-request accounting.
// ---------------------------------------------------------------------

#[test]
fn repeated_kill_revive_never_double_answers() {
    const ROUNDS: usize = 100;
    const PER_ROUND: usize = 4;
    const VICTIM: usize = 0;
    let router = start(2, Duration::from_millis(1), GatewayBackend::Blocking);
    let client = MultiplexClient::new(router.local_addr(), ClientConfig::default()).unwrap();
    let victim_key = key_on_shard(&router, VICTIM);

    for round in 0..ROUNDS {
        let pending: Vec<_> = (0..PER_ROUND)
            .map(|i| {
                client
                    .submit_keyed(
                        "race",
                        &[(round * PER_ROUND + i) as f32],
                        Duration::from_secs(30),
                        false,
                        Some(victim_key),
                    )
                    .expect("submit")
            })
            .collect();
        // Kill immediately — depending on scheduling the submits are
        // pre-write, mid-write, or already staged. All three interleavings
        // must resolve each tag exactly once.
        router.kill_shard(VICTIM);
        for (i, p) in pending.into_iter().enumerate() {
            let outcome = p
                .wait()
                .unwrap_or_else(|e| panic!("round {round} request {i}: {e:?}"));
            assert_eq!(outcome.predicted, Some((round * PER_ROUND + i) as u64));
        }
        router
            .revive_shard(
                VICTIM,
                shard_runtime(RAMP.to_vec(), Duration::from_millis(1), &runtime_config()),
            )
            .expect("revive");
    }
    assert_eq!(
        client.stale_frames(),
        0,
        "a stale frame is a double-answered tag"
    );
    assert_eq!(router.shard_lost_rejects(), 0);
    router.shutdown();
}

// ---------------------------------------------------------------------
// Regression: revive ordering. The ring used to republish before the
// revived gateway accepted connections, so a submit racing the revival
// dialed a dead socket and saw a spurious ShardLost. The ring now
// publishes only after an accept-health probe; hammering requests across
// the revival window must never fail.
// ---------------------------------------------------------------------

#[test]
fn revive_republishes_only_after_accept_health() {
    const REVIVALS: usize = 20;
    const VICTIM: usize = 0;
    let router = start(2, Duration::from_millis(1), GatewayBackend::Blocking);
    let client = MultiplexClient::new(
        router.local_addr(),
        ClientConfig {
            // One attempt: a dial against a not-yet-accepting revived
            // shard would surface immediately instead of being retried
            // into invisibility.
            max_attempts: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let victim_key = key_on_shard(&router, VICTIM);

    for round in 0..REVIVALS {
        router.kill_shard(VICTIM);
        let runtime = shard_runtime(RAMP.to_vec(), Duration::from_millis(1), &runtime_config());
        std::thread::scope(|scope| {
            let reviver = scope.spawn(|| router.revive_shard(VICTIM, runtime).expect("revive"));
            // Requests before, during, and after the revival window. Each
            // must complete on the first attempt regardless of which side
            // of the ring republish it lands on.
            for i in 0..8u64 {
                let outcome = client
                    .infer_keyed(
                        "revive-race",
                        &[i as f32],
                        Duration::from_secs(30),
                        Some(victim_key),
                    )
                    .unwrap_or_else(|e| panic!("round {round} request {i}: {e:?}"));
                assert_eq!(outcome.predicted, Some(i));
            }
            reviver.join().unwrap();
        });
    }
    assert_eq!(router.shard_lost_rejects(), 0, "spurious ShardLost");
    router.shutdown();
}

// ---------------------------------------------------------------------
// Regression: stale upstream reuse. A router connection used to cache
// its proxy to shard N forever; after kill + revive the cached socket
// pointed at the dead generation and the first keyed request on an old
// connection failed. Upstreams are now keyed by (shard, generation).
// ---------------------------------------------------------------------

#[test]
fn old_connections_reach_a_revived_shard_first_try() {
    const VICTIM: usize = 0;
    let router = start(2, Duration::from_millis(1), GatewayBackend::Blocking);
    // max_attempts 1: reuse of a stale upstream must fail the test, not
    // burn a silent retry.
    let client = MultiplexClient::new(
        router.local_addr(),
        ClientConfig {
            max_attempts: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let victim_key = key_on_shard(&router, VICTIM);

    // Prime this connection's upstream cache with generation-1 sockets to
    // both shards.
    for shard in 0..2 {
        let key = key_on_shard(&router, shard);
        let outcome = client
            .infer_keyed("prime", &[1.0], Duration::from_secs(10), Some(key))
            .expect("prime the upstream cache");
        assert_eq!(outcome.predicted, Some(1));
    }

    router.kill_shard(VICTIM);
    // While the victim is down its keys serve from the standby.
    let outcome = client
        .infer_keyed("standby", &[2.0], Duration::from_secs(10), Some(victim_key))
        .expect("standby serves the victim's keys");
    assert_eq!(outcome.predicted, Some(2));

    router
        .revive_shard(
            VICTIM,
            shard_runtime(RAMP.to_vec(), Duration::from_millis(1), &runtime_config()),
        )
        .expect("revive");
    let before = router.shard_stats()[VICTIM].completed();
    let outcome = client
        .infer_keyed("revived", &[3.0], Duration::from_secs(10), Some(victim_key))
        .expect("first request after revival must not hit a stale socket");
    assert_eq!(outcome.predicted, Some(3));
    assert_eq!(
        router.shard_stats()[VICTIM].completed(),
        before + 1,
        "the revived generation served it"
    );
    router.shutdown();
}

// ---------------------------------------------------------------------
// Loadgen through a kill with NO client retries: under Replay the tier
// itself absorbs the fault, so the report shows zero rejects, zero
// errors, zero deadline misses — every request completed.
// ---------------------------------------------------------------------

fn loadgen_through_kill_is_zero_error(backend: GatewayBackend) {
    const SHARDS: usize = 3;
    const TOTAL: usize = 300;
    let router = start(SHARDS, Duration::from_millis(1), backend);
    let config = loadgen_config(router.local_addr().to_string(), TOTAL, 23);

    let run = std::thread::spawn(move || eugene_net::loadgen::run(&config));
    std::thread::sleep(Duration::from_millis(150));
    router.kill_shard(0);
    let report = run.join().expect("loadgen run never hangs");

    assert_eq!(
        report.completed, TOTAL as u64,
        "kill must be invisible: {report:?}"
    );
    assert_eq!(report.rejected, 0, "{report:?}");
    assert_eq!(report.rejected_shard_lost, 0, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.deadline_exhausted, 0, "{report:?}");
    router.shutdown();
}

#[test]
fn loadgen_through_kill_is_zero_error_blocking() {
    loadgen_through_kill_is_zero_error(GatewayBackend::Blocking);
}

#[test]
fn loadgen_through_kill_is_zero_error_readiness() {
    loadgen_through_kill_is_zero_error(GatewayBackend::Readiness);
}

// ---------------------------------------------------------------------
// Live elasticity under load: scale out (add_shard) and back in
// (remove_shard) mid-run. With single-attempt clients every request must
// still complete — the double-routing window covers migrating ranges and
// the drain protocol finishes the removed shard's work.
// ---------------------------------------------------------------------

fn live_scale_out_and_in_under_load(backend: GatewayBackend) {
    const SHARDS: usize = 2;
    const TOTAL: usize = 400;
    let router = start(SHARDS, Duration::from_millis(1), backend);
    let config = loadgen_config(router.local_addr().to_string(), TOTAL, 41);
    let epoch_start = router.ring_epoch();

    let run = std::thread::spawn(move || eugene_net::loadgen::run(&config));

    std::thread::sleep(Duration::from_millis(120));
    let newcomer = router
        .add_shard(shard_runtime(
            RAMP.to_vec(),
            Duration::from_millis(1),
            &runtime_config(),
        ))
        .expect("live scale-out");
    assert_eq!(newcomer, SHARDS, "new slot appended");
    assert_eq!(router.alive_shards(), SHARDS + 1);

    std::thread::sleep(Duration::from_millis(150));
    assert!(router.remove_shard(0), "live scale-in of shard 0");

    let report = run.join().expect("loadgen run never hangs");
    assert_eq!(
        report.completed, TOTAL as u64,
        "elasticity must be invisible: {report:?}"
    );
    assert_eq!(report.rejected, 0, "{report:?}");
    assert_eq!(report.rejected_shard_lost, 0, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.deadline_exhausted, 0, "{report:?}");

    // Membership changes bumped the ring epoch, and the newcomer is a
    // first-class ring member serving its ranges.
    assert!(router.ring_epoch() > epoch_start, "epoch must advance");
    assert_eq!(router.alive_shards(), SHARDS);
    assert_eq!(
        router.shard_for_key(key_on_shard(&router, newcomer)),
        Some(newcomer)
    );
    router.shutdown();
}

#[test]
fn live_scale_out_and_in_under_load_blocking() {
    live_scale_out_and_in_under_load(GatewayBackend::Blocking);
}

#[test]
fn live_scale_out_and_in_under_load_readiness() {
    live_scale_out_and_in_under_load(GatewayBackend::Readiness);
}
