//! Backend parity: the readiness-driven event loop must be
//! indistinguishable from the blocking backend on the wire — same
//! multiplexing, admission, churn, stale-frame, and shutdown behavior —
//! while holding thousands of idle connections on a single thread.

mod common;

use common::start_gateway;
use eugene_net::wire::{self, Frame, FrameBuffer, PROTOCOL_VERSION};
use eugene_net::{
    ClientConfig, ClientError, EugeneClient, Gateway, GatewayBackend, GatewayConfig,
    MultiplexClient,
};
use eugene_serve::RuntimeConfig;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn fast_runtime(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        num_workers: workers,
        ..RuntimeConfig::default()
    }
}

fn readiness_config() -> GatewayConfig {
    GatewayConfig {
        high_water: 1_000_000,
        hard_cap: 2_000_000,
        backend: GatewayBackend::Readiness,
        ..GatewayConfig::default()
    }
}

fn readiness_gateway(ramp: Vec<f32>, stage_time: Duration, workers: usize) -> Gateway {
    start_gateway(ramp, stage_time, fast_runtime(workers), readiness_config())
}

#[test]
fn serial_client_round_trips_over_readiness() {
    let gateway = readiness_gateway(vec![0.5, 0.95], Duration::from_millis(1), 2);
    assert_eq!(gateway.backend(), GatewayBackend::Readiness);
    let mut client =
        EugeneClient::new(gateway.local_addr(), ClientConfig::default()).expect("resolve");
    let outcome = client
        .infer("serial", &[11.0], Duration::from_secs(5))
        .expect("round trip");
    assert_eq!(outcome.predicted, Some(11));
    assert!(!outcome.expired);
}

/// The multiplex contract, verbatim from the blocking-backend suite:
/// many interleaved in-flight tags on one connection, each `Final` and
/// every `StageUpdate` routed to exactly the tag that owns it.
#[test]
fn interleaved_tags_demux_on_one_readiness_connection() {
    const N: usize = 64;
    let ramp = vec![0.3, 0.6, 0.9];
    let gateway = readiness_gateway(ramp.clone(), Duration::from_millis(2), 4);
    let status = gateway.status();
    let client = MultiplexClient::new(gateway.local_addr(), ClientConfig::default())
        .expect("resolve loopback");

    let pending: Vec<_> = (0..N)
        .map(|i| {
            client
                .submit(
                    "interactive",
                    &[i as f32],
                    Duration::from_secs(10),
                    i % 2 == 0,
                )
                .expect("pipelined submit")
        })
        .collect();

    for (i, p) in pending.into_iter().enumerate() {
        let want_progress = i % 2 == 0;
        let outcome = p.wait().unwrap_or_else(|e| panic!("request {i}: {e}"));
        assert_eq!(outcome.predicted, Some(i as u64), "Final routed to tag {i}");
        assert!(!outcome.expired, "request {i} expired");
        if want_progress {
            assert_eq!(
                outcome.stage_updates.len(),
                ramp.len(),
                "request {i} must stream one update per stage"
            );
            for update in &outcome.stage_updates {
                assert_eq!(update.predicted, i as u64, "update routed to tag {i}");
            }
        } else {
            assert!(outcome.stage_updates.is_empty());
        }
    }

    assert_eq!(client.stale_frames(), 0, "no frame may go undelivered");
    assert_eq!(status.connections_opened(), 1, "exactly one connection");
    assert_eq!(
        status.threads_spawned(),
        1,
        "the event loop is the only gateway thread"
    );
}

/// Atomic admission is shared with the blocking backend: a concurrent
/// submit storm can never push in-flight load past `hard_cap`.
#[test]
fn hard_cap_holds_under_concurrent_submits_on_readiness() {
    const HARD_CAP: u64 = 16;
    let gateway = start_gateway(
        vec![0.5, 0.95],
        Duration::from_millis(3),
        fast_runtime(4),
        GatewayConfig {
            high_water: 8,
            hard_cap: HARD_CAP,
            backend: GatewayBackend::Readiness,
            ..GatewayConfig::default()
        },
    );
    let status = gateway.status();
    let client =
        MultiplexClient::new(gateway.local_addr(), ClientConfig::default()).expect("resolve");

    // Pipeline a burst far deeper than the cap before waiting on any
    // answer: the event loop admits them back-to-back within one read
    // sweep, so the reservation gauge must be what stops the overflow.
    const BURST: usize = 64;
    let pending: Vec<_> = (0..BURST)
        .map(|i| {
            client
                .submit("anon", &[i as f32], Duration::from_secs(5), false)
                .expect("pipelined submit")
        })
        .collect();
    let (mut answered, mut rejected) = (0u64, 0u64);
    for (i, p) in pending.into_iter().enumerate() {
        match p.wait() {
            Ok(_) => answered += 1,
            Err(ClientError::Rejected { .. }) => rejected += 1,
            Err(e) => panic!("request {i}: {e}"),
        }
    }

    assert!(
        status.peak_in_flight() <= HARD_CAP,
        "in-flight load must never exceed hard_cap={HARD_CAP}, peaked at {}",
        status.peak_in_flight()
    );
    assert_eq!(status.in_flight_reserved(), 0, "every slot released");
    assert!(answered > 0, "some requests must get through");
    assert!(rejected > 0, "a 64-deep burst against cap 16 must shed");
}

/// Overload sheds lowest-utility traffic with a retry hint and recovers
/// once the burst drains — identical semantics to the blocking backend.
#[test]
fn overload_sheds_then_recovers_on_readiness() {
    let gateway = start_gateway(
        vec![0.5, 0.9],
        Duration::from_millis(20),
        fast_runtime(1),
        GatewayConfig {
            high_water: 2,
            hard_cap: 4,
            backend: GatewayBackend::Readiness,
            ..GatewayConfig::default()
        },
    );
    let addr = gateway.local_addr();

    const BURST: usize = 12;
    let barrier = Arc::new(Barrier::new(BURST));
    let mut handles = Vec::new();
    for i in 0..BURST {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = EugeneClient::new(
                addr,
                ClientConfig {
                    max_attempts: 1,
                    seed: i as u64,
                    ..ClientConfig::default()
                },
            )
            .expect("resolve loopback");
            barrier.wait();
            client.infer("burst", &[i as f32], Duration::from_secs(10))
        }));
    }
    let (mut completed, mut rejected) = (0u32, 0u32);
    for handle in handles {
        match handle.join().expect("client thread panicked") {
            Ok(outcome) => {
                assert!(!outcome.expired);
                completed += 1;
            }
            Err(ClientError::Rejected { retry_after, .. }) => {
                assert!(retry_after > Duration::ZERO, "reject carries a hint");
                rejected += 1;
            }
            Err(other) => panic!("unexpected failure under overload: {other}"),
        }
    }
    assert!(rejected > 0, "a 12-deep burst into hard_cap=4 must shed");
    assert!(completed > 0, "admitted requests must still complete");

    let mut client = EugeneClient::new(addr, ClientConfig::default()).expect("resolve");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.infer("burst", &[7.0], Duration::from_secs(5)) {
            Ok(outcome) => {
                assert_eq!(outcome.predicted, Some(7));
                break;
            }
            Err(ClientError::Rejected { retry_after, .. }) if Instant::now() < deadline => {
                std::thread::sleep(retry_after);
            }
            Err(other) => panic!("gateway failed to recover after overload: {other}"),
        }
    }
    gateway.shutdown();
}

/// Connect → infer → disconnect churn: closed sockets leave the event
/// loop promptly, so the open-connection gauge tracks live connections.
#[test]
fn connection_churn_drains_closed_sockets_on_readiness() {
    const CYCLES: usize = 60;
    let gateway = readiness_gateway(vec![0.9], Duration::ZERO, 2);
    let addr = gateway.local_addr();
    let status = gateway.status();

    for cycle in 0..CYCLES {
        let mut client =
            EugeneClient::new(addr, ClientConfig::default()).expect("resolve loopback");
        let outcome = client
            .infer("churn", &[cycle as f32], Duration::from_secs(5))
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
        assert_eq!(outcome.predicted, Some(cycle as u64));
        drop(client);
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while gateway.tracked_connections() > 1 {
        assert!(
            Instant::now() < deadline,
            "{} connections still open long after all {CYCLES} closed",
            gateway.tracked_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(status.connections_opened(), CYCLES as u64);
    assert!(!status.accept_failed(), "accepting must survive churn");
    assert_eq!(
        status.threads_spawned(),
        1,
        "churn must not spawn threads on the readiness backend"
    );
}

/// An abandoned client deadline must not wedge the connection: the late
/// `Final` is dropped client-side as stale and the pipeline keeps
/// working (mirror of the stale-frames suite).
#[test]
fn abandoned_deadline_leaves_the_pipeline_usable_on_readiness() {
    let gateway = start_gateway(
        vec![0.5, 0.8, 0.95],
        Duration::from_millis(25),
        RuntimeConfig {
            num_workers: 2,
            daemon_poll: Duration::from_millis(100),
            ..RuntimeConfig::default()
        },
        readiness_config(),
    );
    let client =
        MultiplexClient::new(gateway.local_addr(), ClientConfig::default()).expect("resolve");

    let result = client
        .submit("impatient", &[5.0], Duration::from_millis(15), false)
        .expect("submit")
        .wait();
    match result {
        Err(ClientError::DeadlineExhausted) => {}
        other => panic!("expected DeadlineExhausted, got {other:?}"),
    }

    let outcome = client
        .submit("patient", &[9.0], Duration::from_secs(10), false)
        .expect("submit")
        .wait()
        .expect("pipeline must survive an abandoned request");
    assert_eq!(outcome.predicted, Some(9));

    let deadline = Instant::now() + Duration::from_secs(5);
    while client.stale_frames() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        client.stale_frames() >= 1,
        "the abandoned request's late Final must be counted as stale"
    );
    assert!(client.is_connected(), "deadline must not kill the pipe");
}

/// Shutdown with in-flight multiplexed requests: every admitted request
/// still receives its `Final` during the drain.
#[test]
fn shutdown_drains_every_in_flight_request_on_readiness() {
    const N: usize = 8;
    let gateway = readiness_gateway(vec![0.4, 0.7, 0.95], Duration::from_millis(10), 4);
    let client = MultiplexClient::new(gateway.local_addr(), ClientConfig::default())
        .expect("resolve loopback");
    let pending: Vec<_> = (0..N)
        .map(|i| {
            client
                .submit("interactive", &[i as f32], Duration::from_secs(10), false)
                .expect("submit")
        })
        .collect();
    let status = gateway.status();
    let deadline = Instant::now() + Duration::from_secs(5);
    while status.in_flight_reserved() < N as u64 {
        assert!(
            Instant::now() < deadline,
            "gateway never admitted all {N} submits"
        );
        std::thread::yield_now();
    }
    gateway.shutdown();
    for (i, p) in pending.into_iter().enumerate() {
        let outcome = p
            .wait()
            .unwrap_or_else(|e| panic!("request {i} lost in drain: {e}"));
        assert_eq!(outcome.predicted, Some(i as u64));
    }
}

/// The tentpole scaling claim, sized for a CI box: hundreds of idle
/// handshaken connections are held by ONE gateway thread (no
/// thread-per-connection anywhere), and a request threaded between them
/// still completes promptly.
#[test]
fn idle_connections_hold_on_a_single_thread() {
    const IDLE: usize = 600;
    let gateway = readiness_gateway(vec![0.9], Duration::from_millis(1), 2);
    let addr = gateway.local_addr();
    let status = gateway.status();

    let mut idle = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        wire::write_frame(
            &mut stream,
            &Frame::Hello {
                max_version: PROTOCOL_VERSION,
            },
        )
        .expect("hello");
        let mut buffer = FrameBuffer::new();
        loop {
            match buffer.poll(&mut stream).expect("read ack") {
                Some(Frame::HelloAck { .. }) => break,
                Some(other) => panic!("expected HelloAck, got {other:?}"),
                None => {}
            }
        }
        idle.push(stream);
    }
    assert_eq!(status.open_connections(), IDLE as u64);
    assert_eq!(
        status.threads_spawned(),
        1,
        "{IDLE} idle connections must cost exactly one gateway thread"
    );

    // A working request among the idle crowd completes promptly.
    let mut client = EugeneClient::new(addr, ClientConfig::default()).expect("resolve");
    let started = Instant::now();
    let outcome = client
        .infer("busy", &[3.0], Duration::from_secs(5))
        .expect("request among idle connections");
    assert_eq!(outcome.predicted, Some(3));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "request took {:?} with {IDLE} idle connections parked",
        started.elapsed()
    );

    // Closing the idle sockets drains the gauge without new activity.
    drop(idle);
    let deadline = Instant::now() + Duration::from_secs(10);
    while status.open_connections() > 1 {
        assert!(
            Instant::now() < deadline,
            "{} connections still open after all idle sockets closed",
            status.open_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
