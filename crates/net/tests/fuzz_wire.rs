//! Adversarial wire-protocol tests: the decoder and a live gateway must
//! survive arbitrary, truncated, and bit-flipped input without panicking.

mod common;

use common::start_gateway;
use eugene_net::wire::{decode_frame, encode_frame, Frame, SubmitRequest};
use eugene_net::{ClientConfig, EugeneClient, GatewayConfig};
use eugene_serve::RuntimeConfig;
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Model / tenant names over an alphabet that includes non-ASCII, so the
/// trailing addressing fields are fuzzed as arbitrary UTF-8, not just
/// identifiers.
fn name_strategy() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &['a', 'z', '0', '9', '-', '_', '\u{3b1}', '\u{65e5}'];
    prop::collection::vec(0usize..ALPHABET.len(), 1..12)
        .prop_map(|picks| picks.into_iter().map(|i| ALPHABET[i]).collect())
}

proptest! {
    /// Arbitrary bytes must never panic the decoder — they either decode
    /// or produce a typed error.
    #[test]
    fn decoder_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_frame(&bytes);
    }

    /// A valid frame with one flipped byte must never panic the decoder.
    #[test]
    fn decoder_survives_single_byte_corruption(
        tag in any::<u64>(),
        budget in any::<u64>(),
        flip_pos in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = encode_frame(&Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: "fuzz".to_owned(),
            budget_ms: budget,
            want_progress: tag % 2 == 0,
            payload: vec![1.0, -2.5, 3.75],
            routing_key: Some(tag ^ 0xABCD),
            model: if tag % 3 == 0 { None } else { Some("variant-b".to_owned()) },
            tenant: if budget % 2 == 0 { Some("acme".to_owned()) } else { None },
            epoch: if tag % 5 == 0 { Some(tag >> 3) } else { None },
        }));
        let pos = flip_pos as usize % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        let _ = decode_frame(&bytes);
    }

    /// Every prefix of a valid frame decodes as Truncated (or a typed
    /// error), never a panic or a bogus success.
    #[test]
    fn decoder_survives_truncation(cut in any::<u16>()) {
        let bytes = encode_frame(&Frame::Submit(SubmitRequest {
            client_tag: 9,
            class: "truncate".to_owned(),
            budget_ms: 100,
            want_progress: true,
            payload: vec![0.5; 16],
            routing_key: Some(7),
            model: Some("full".to_owned()),
            tenant: Some("tenant-a".to_owned()),
            epoch: Some(3),
        }));
        let cut = cut as usize % bytes.len();
        prop_assert!(decode_frame(&bytes[..cut]).is_err(), "prefix must not decode");
    }

    /// Submit frames round-trip exactly through encode/decode — including
    /// the trailing model / tenant addressing fields.
    #[test]
    fn submit_roundtrips(
        tag in any::<u64>(),
        budget in any::<u64>(),
        want_progress in any::<bool>(),
        payload in prop::collection::vec(-1000.0f32..1000.0, 0..32),
        model in prop::option::of(name_strategy()),
        tenant in prop::option::of(name_strategy()),
        epoch in prop::option::of(any::<u64>()),
    ) {
        let frame = Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: "class-\u{3b1}".to_owned(), // non-ASCII survives too
            budget_ms: budget,
            want_progress,
            payload,
            routing_key: if tag % 2 == 0 { Some(tag) } else { None },
            model,
            tenant,
            epoch,
        });
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// v1 interop: a peer that predates the model registry ends the
    /// Submit payload after the routing key (or even before it). Both
    /// legacy shapes must decode as "default model, anonymous tenant",
    /// whatever the rest of the frame holds.
    #[test]
    fn legacy_submits_without_trailing_fields_still_decode(
        tag in any::<u64>(),
        budget in any::<u64>(),
        payload in prop::collection::vec(-1000.0f32..1000.0, 0..16),
        keyed in any::<bool>(),
        drop_routing_key_too in any::<bool>(),
    ) {
        let full = Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: "legacy".to_owned(),
            budget_ms: budget,
            want_progress: false,
            payload,
            routing_key: if keyed && !drop_routing_key_too { Some(tag) } else { None },
            model: None,
            tenant: None,
            epoch: None,
        });
        let mut bytes = encode_frame(&full);
        // Strip the trailing absent-field tags a legacy encoder never
        // writes: model + tenant + epoch (3 bytes), optionally
        // routing_key too (1 more byte when None), then re-seal length
        // + checksum.
        let strip = if drop_routing_key_too { 4 } else { 3 };
        bytes.truncate(bytes.len() - strip);
        let len = (bytes.len() - 12) as u32;
        bytes[4..8].copy_from_slice(&len.to_le_bytes());
        let sum = eugene_net::wire::checksum(&bytes[12..]);
        bytes[8..12].copy_from_slice(&sum.to_le_bytes());

        let (decoded, used) = decode_frame(&bytes).expect("legacy frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, full);
    }
}

/// A live gateway fed raw garbage on many connections must keep serving
/// well-formed clients.
#[test]
fn gateway_survives_garbage_connections() {
    let gateway = start_gateway(
        vec![0.9],
        Duration::ZERO,
        RuntimeConfig::default(),
        GatewayConfig::default(),
    );
    let addr = gateway.local_addr();

    let mut rng_state = 0x5EED_u64;
    let mut next = move || {
        // SplitMix64 keeps the garbage deterministic.
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for round in 0..24 {
        let mut stream = TcpStream::connect(addr).expect("connect garbage stream");
        let len = (next() % 200) as usize + 1;
        let garbage: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        // Some rounds start with valid magic so the server walks deeper
        // into the header before hitting nonsense.
        let _ = match round % 3 {
            0 => stream.write_all(&garbage),
            1 => stream
                .write_all(&[0xEB, 0x9E])
                .and_then(|_| stream.write_all(&garbage)),
            _ => {
                // Truncated-but-valid prefix: write half a real frame.
                let bytes = encode_frame(&Frame::Ping { nonce: next() });
                stream.write_all(&bytes[..bytes.len() / 2])
            }
        };
        drop(stream);
    }

    // The gateway must still answer a well-behaved client.
    let mut client = EugeneClient::new(addr, ClientConfig::default()).expect("resolve loopback");
    let rtt = client
        .ping(Duration::from_secs(5))
        .expect("gateway still alive");
    assert!(rtt < Duration::from_secs(5));
    let outcome = client
        .infer("sane", &[11.0], Duration::from_secs(10))
        .expect("gateway still serves inference");
    assert_eq!(outcome.predicted, Some(11));
    gateway.shutdown();
}
