//! Adversarial wire-protocol tests: the decoder and a live gateway must
//! survive arbitrary, truncated, and bit-flipped input without panicking.

mod common;

use common::start_gateway;
use eugene_net::wire::{decode_frame, encode_frame, Frame, SubmitRequest};
use eugene_net::{ClientConfig, EugeneClient, GatewayConfig};
use eugene_serve::RuntimeConfig;
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

proptest! {
    /// Arbitrary bytes must never panic the decoder — they either decode
    /// or produce a typed error.
    #[test]
    fn decoder_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_frame(&bytes);
    }

    /// A valid frame with one flipped byte must never panic the decoder.
    #[test]
    fn decoder_survives_single_byte_corruption(
        tag in any::<u64>(),
        budget in any::<u64>(),
        flip_pos in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = encode_frame(&Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: "fuzz".to_owned(),
            budget_ms: budget,
            want_progress: tag % 2 == 0,
            payload: vec![1.0, -2.5, 3.75],
            routing_key: Some(tag ^ 0xABCD),
        }));
        let pos = flip_pos as usize % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        let _ = decode_frame(&bytes);
    }

    /// Every prefix of a valid frame decodes as Truncated (or a typed
    /// error), never a panic or a bogus success.
    #[test]
    fn decoder_survives_truncation(cut in any::<u16>()) {
        let bytes = encode_frame(&Frame::Submit(SubmitRequest {
            client_tag: 9,
            class: "truncate".to_owned(),
            budget_ms: 100,
            want_progress: true,
            payload: vec![0.5; 16],
            routing_key: Some(7),
        }));
        let cut = cut as usize % bytes.len();
        prop_assert!(decode_frame(&bytes[..cut]).is_err(), "prefix must not decode");
    }

    /// Submit frames round-trip exactly through encode/decode.
    #[test]
    fn submit_roundtrips(
        tag in any::<u64>(),
        budget in any::<u64>(),
        want_progress in any::<bool>(),
        payload in prop::collection::vec(-1000.0f32..1000.0, 0..32),
    ) {
        let frame = Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: "class-\u{3b1}".to_owned(), // non-ASCII survives too
            budget_ms: budget,
            want_progress,
            payload,
            routing_key: if tag % 2 == 0 { Some(tag) } else { None },
        });
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }
}

/// A live gateway fed raw garbage on many connections must keep serving
/// well-formed clients.
#[test]
fn gateway_survives_garbage_connections() {
    let gateway = start_gateway(
        vec![0.9],
        Duration::ZERO,
        RuntimeConfig::default(),
        GatewayConfig::default(),
    );
    let addr = gateway.local_addr();

    let mut rng_state = 0x5EED_u64;
    let mut next = move || {
        // SplitMix64 keeps the garbage deterministic.
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for round in 0..24 {
        let mut stream = TcpStream::connect(addr).expect("connect garbage stream");
        let len = (next() % 200) as usize + 1;
        let garbage: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        // Some rounds start with valid magic so the server walks deeper
        // into the header before hitting nonsense.
        let _ = match round % 3 {
            0 => stream.write_all(&garbage),
            1 => stream
                .write_all(&[0xEB, 0x9E])
                .and_then(|_| stream.write_all(&garbage)),
            _ => {
                // Truncated-but-valid prefix: write half a real frame.
                let bytes = encode_frame(&Frame::Ping { nonce: next() });
                stream.write_all(&bytes[..bytes.len() / 2])
            }
        };
        drop(stream);
    }

    // The gateway must still answer a well-behaved client.
    let mut client = EugeneClient::new(addr, ClientConfig::default()).expect("resolve loopback");
    let rtt = client
        .ping(Duration::from_secs(5))
        .expect("gateway still alive");
    assert!(rtt < Duration::from_secs(5));
    let outcome = client
        .infer("sane", &[11.0], Duration::from_secs(10))
        .expect("gateway still serves inference");
    assert_eq!(outcome.predicted, Some(11));
    gateway.shutdown();
}
