//! Fault injection for the sharded front tier, run against BOTH gateway
//! backends (mirroring `readiness.rs`): shard death must be a
//! well-defined event — in-flight requests on the dead shard answer
//! `ShardLost`, new sessions re-admit onto survivors, nothing ever
//! hangs — and revival must restore the exact prior key assignment.

mod common;

use common::{shard_runtime, start_router};
use eugene_net::shard::{FailoverPolicy, ReplicaConfig, ShardConfig, ShardRouter};
use eugene_net::wire::RejectReason;
use eugene_net::{
    ClientConfig, ClientError, GatewayBackend, GatewayConfig, LoadgenConfig, LoadgenMode,
    MultiplexClient,
};
use eugene_serve::RuntimeConfig;
use std::time::{Duration, Instant};

const RAMP: [f32; 2] = [0.5, 0.95];

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        num_workers: 2,
        ..RuntimeConfig::default()
    }
}

fn shard_config(backend: GatewayBackend) -> ShardConfig {
    ShardConfig {
        // This suite pins the legacy pre-replication contract: shard
        // death answers in-flight tags with ShardLost (the transparent
        // Replay policy has its own suite, replica_faults.rs).
        replica: ReplicaConfig {
            failover: FailoverPolicy::Reject,
            ..ReplicaConfig::default()
        },
        gateway: GatewayConfig {
            high_water: 1_000_000,
            hard_cap: 2_000_000,
            backend,
            ..GatewayConfig::default()
        },
        ..ShardConfig::default()
    }
}

fn start(shards: usize, stage_time: Duration, backend: GatewayBackend) -> ShardRouter {
    start_router(
        shards,
        RAMP.to_vec(),
        stage_time,
        runtime_config(),
        shard_config(backend),
    )
}

/// A routing key the live ring currently maps to `shard`.
fn key_on_shard(router: &ShardRouter, shard: usize) -> u64 {
    (0..100_000u64)
        .find(|&k| router.shard_for_key(k) == Some(shard))
        .expect("some key must map to every live shard")
}

// ---------------------------------------------------------------------
// Distribution: distinct keys spread over every shard, and every request
// is served by exactly the shard the ring names.
// ---------------------------------------------------------------------

fn keys_spread_over_all_shards(backend: GatewayBackend) {
    const SHARDS: usize = 3;
    const KEYS: u64 = 48;
    let router = start(SHARDS, Duration::from_millis(1), backend);
    let client = MultiplexClient::new(router.local_addr(), ClientConfig::default()).unwrap();
    let mut expected = vec![0u64; SHARDS];
    let pending: Vec<_> = (0..KEYS)
        .map(|key| {
            expected[router.shard_for_key(key).unwrap()] += 1;
            client
                .submit_keyed(
                    "mix",
                    &[key as f32],
                    Duration::from_secs(10),
                    false,
                    Some(key),
                )
                .expect("submit")
        })
        .collect();
    for (key, p) in pending.into_iter().enumerate() {
        let outcome = p.wait().expect("keyed request completes");
        assert_eq!(
            outcome.predicted,
            Some(key as u64),
            "payload survived routing"
        );
    }
    let per_shard: Vec<u64> = router.shard_stats().iter().map(|s| s.completed()).collect();
    assert_eq!(
        per_shard.iter().sum::<u64>(),
        KEYS,
        "every request served once"
    );
    assert_eq!(
        per_shard, expected,
        "requests landed exactly where the ring routes"
    );
    for (shard, &served) in per_shard.iter().enumerate() {
        assert!(
            served > 0,
            "shard {shard} served nothing out of {KEYS} keys"
        );
    }
    router.shutdown();
}

#[test]
fn keys_spread_over_all_shards_blocking() {
    keys_spread_over_all_shards(GatewayBackend::Blocking);
}

#[test]
fn keys_spread_over_all_shards_readiness() {
    keys_spread_over_all_shards(GatewayBackend::Readiness);
}

// ---------------------------------------------------------------------
// Kill mid-flight: staged sessions on the victim get ShardLost, new
// sessions land on survivors, revival restores the assignment.
// ---------------------------------------------------------------------

fn kill_mid_flight_rejects_in_flight_and_reroutes_new(backend: GatewayBackend) {
    const SHARDS: usize = 3;
    const IN_FLIGHT: usize = 8;
    const VICTIM: usize = 1;
    // Slow stages so the victim's requests are reliably still staged when
    // the shard dies.
    let router = start(SHARDS, Duration::from_millis(150), backend);
    let client = MultiplexClient::new(router.local_addr(), ClientConfig::default()).unwrap();

    let victim_key = key_on_shard(&router, VICTIM);
    let survivor_key = key_on_shard(&router, (VICTIM + 1) % SHARDS);
    let assignment_before: Vec<Option<usize>> = (0..256).map(|k| router.shard_for_key(k)).collect();

    let doomed: Vec<_> = (0..IN_FLIGHT)
        .map(|i| {
            client
                .submit_keyed(
                    "doomed",
                    &[i as f32],
                    Duration::from_secs(30),
                    false,
                    Some(victim_key),
                )
                .expect("submit onto victim")
        })
        .collect();
    let safe = client
        .submit_keyed(
            "safe",
            &[7.0],
            Duration::from_secs(30),
            false,
            Some(survivor_key),
        )
        .expect("submit onto survivor");

    // Wait until the victim shard has actually admitted the requests, so
    // the kill provably lands mid-flight, then kill it.
    let victim_stats = &router.shard_stats()[VICTIM];
    let admitted_by = Instant::now() + Duration::from_secs(10);
    while (victim_stats.submitted() as usize) < IN_FLIGHT {
        assert!(
            Instant::now() < admitted_by,
            "victim never admitted the load"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(router.kill_shard(VICTIM), "victim was alive");
    assert_eq!(router.alive_shards(), SHARDS - 1);

    // Every in-flight request on the dead shard resolves promptly with a
    // ShardLost reject — no hangs, no fabricated finals.
    for (i, p) in doomed.into_iter().enumerate() {
        let waited = Instant::now();
        match p.wait() {
            Err(ClientError::Rejected { reason, .. }) => {
                assert_eq!(reason, RejectReason::ShardLost, "request {i}");
            }
            other => panic!("request {i} on dead shard resolved as {other:?}"),
        }
        assert!(
            waited.elapsed() < Duration::from_secs(5),
            "request {i} took {:?} to observe shard loss",
            waited.elapsed()
        );
    }
    assert!(router.shard_lost_rejects() >= IN_FLIGHT as u64);

    // The survivor's request is untouched by the kill.
    let outcome = safe.wait().expect("survivor keeps serving");
    assert_eq!(outcome.predicted, Some(7));

    // New sessions with the victim's key re-admit onto a survivor.
    let rerouted = router.shard_for_key(victim_key).expect("ring not empty");
    assert_ne!(rerouted, VICTIM, "dead shard must leave the ring");
    let outcome = client
        .infer_keyed("retry", &[3.0], Duration::from_secs(30), Some(victim_key))
        .expect("victim-keyed request re-admits on a survivor");
    assert_eq!(outcome.predicted, Some(3));

    // Revival restores the exact prior assignment (bounded remapping both
    // ways: only the victim's keys ever moved).
    router
        .revive_shard(
            VICTIM,
            shard_runtime(RAMP.to_vec(), Duration::from_millis(1), &runtime_config()),
        )
        .expect("revive shard");
    assert_eq!(router.alive_shards(), SHARDS);
    let assignment_after: Vec<Option<usize>> = (0..256).map(|k| router.shard_for_key(k)).collect();
    assert_eq!(
        assignment_before, assignment_after,
        "revival restores the ring"
    );
    let outcome = client
        .infer_keyed("revived", &[5.0], Duration::from_secs(30), Some(victim_key))
        .expect("revived shard serves again");
    assert_eq!(outcome.predicted, Some(5));
    router.shutdown();
}

#[test]
fn kill_mid_flight_rejects_in_flight_and_reroutes_new_blocking() {
    kill_mid_flight_rejects_in_flight_and_reroutes_new(GatewayBackend::Blocking);
}

#[test]
fn kill_mid_flight_rejects_in_flight_and_reroutes_new_readiness() {
    kill_mid_flight_rejects_in_flight_and_reroutes_new(GatewayBackend::Readiness);
}

// ---------------------------------------------------------------------
// Loadgen under a mid-run kill: the run terminates with every request
// accounted for (completed / rejected / expired / errors), zero hangs,
// and bounded tail latency.
// ---------------------------------------------------------------------

fn loadgen_completes_through_a_kill(backend: GatewayBackend) {
    const SHARDS: usize = 3;
    const TOTAL: usize = 300;
    let router = start(SHARDS, Duration::from_millis(1), backend);
    let addr = router.local_addr().to_string();
    let config = LoadgenConfig {
        addr,
        connections: 2,
        total_requests: TOTAL,
        rate_hz: 600.0,
        seed: 11,
        mode: LoadgenMode::Multiplexed { concurrency: 8 },
        keyspace: Some(64),
        client: ClientConfig {
            // Retries re-admit ShardLost sessions onto survivors, so the
            // kill costs latency, not failed requests.
            max_attempts: 4,
            ..ClientConfig::default()
        },
        ..LoadgenConfig::default()
    };

    let killer = {
        std::thread::spawn({
            let kill_at = Duration::from_millis(150);
            move || {
                std::thread::sleep(kill_at);
            }
        })
    };
    // Kill one shard roughly mid-run from a sibling thread while the
    // loadgen drives the router.
    let run = std::thread::spawn(move || eugene_net::loadgen::run(&config));
    killer.join().unwrap();
    router.kill_shard(0);
    let started = Instant::now();
    let report = run.join().expect("loadgen run never hangs");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "run must terminate promptly after the kill"
    );

    let accounted = report.completed
        + report.rejected
        + report.expired
        + report.deadline_exhausted
        + report.errors;
    assert_eq!(
        accounted, TOTAL as u64,
        "every request resolves exactly once"
    );
    assert!(
        report.completed > (TOTAL / 2) as u64,
        "survivors keep serving: only {}/{TOTAL} completed",
        report.completed
    );
    assert!(
        report.p99_ms < 5_000.0,
        "p99 must stay bounded through the kill, got {}ms",
        report.p99_ms
    );
    router.shutdown();
}

#[test]
fn loadgen_completes_through_a_kill_blocking() {
    loadgen_completes_through_a_kill(GatewayBackend::Blocking);
}

#[test]
fn loadgen_completes_through_a_kill_readiness() {
    loadgen_completes_through_a_kill(GatewayBackend::Readiness);
}

// ---------------------------------------------------------------------
// Router-level protocol details that a single gateway also guarantees.
// ---------------------------------------------------------------------

#[test]
fn router_answers_pings_locally() {
    let router = start(2, Duration::from_millis(1), GatewayBackend::Blocking);
    let client = MultiplexClient::new(router.local_addr(), ClientConfig::default()).unwrap();
    let rtt = client.ping(Duration::from_secs(5)).expect("pong");
    assert!(rtt < Duration::from_secs(5));
    router.shutdown();
}

#[test]
fn all_shards_dead_yields_shard_lost_not_a_hang() {
    let router = start(2, Duration::from_millis(1), GatewayBackend::Blocking);
    let client = MultiplexClient::new(router.local_addr(), ClientConfig::default()).unwrap();
    // Prove the tier serves, then take every shard down.
    client
        .infer("warm", &[1.0], Duration::from_secs(10))
        .expect("tier serves before the kills");
    router.kill_shard(0);
    router.kill_shard(1);
    assert_eq!(router.alive_shards(), 0);
    let started = Instant::now();
    match client.infer("orphan", &[2.0], Duration::from_secs(5)) {
        Err(ClientError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::ShardLost);
        }
        // All retries were ShardLost-rejected and the budget may lapse
        // during the mandated backoffs; either way it resolves.
        Err(ClientError::DeadlineExhausted) => {}
        other => panic!("expected ShardLost with no shards alive, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "no-shard submits must resolve, not hang"
    );
    assert!(router.shard_lost_rejects() > 0);
    router.shutdown();
}
