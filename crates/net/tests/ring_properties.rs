//! Property tests for the consistent-hash ring behind [`ShardRouter`]:
//! removing one of N shards remaps only that shard's keys (bounded well
//! below a full reshuffle), re-adding restores the exact prior
//! assignment, and the assignment is a pure function of (seed,
//! virtual_nodes, membership) — independent of insertion order and of
//! which router process computes it.

mod common;

use common::start_router;
use eugene_net::shard::ShardConfig;
use eugene_net::{GatewayBackend, GatewayConfig, HashRing};
use eugene_serve::RuntimeConfig;
use proptest::prelude::*;
use std::time::Duration;

const KEYS: u64 = 256;

fn assignments(ring: &HashRing, keys: u64) -> Vec<Option<usize>> {
    (0..keys).map(|k| ring.route(k)).collect()
}

fn ring_of(seed: u64, virtual_nodes: usize, shards: usize) -> HashRing {
    let mut ring = HashRing::new(seed, virtual_nodes);
    for shard in 0..shards {
        ring.insert(shard);
    }
    ring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Removing one shard moves ONLY keys that lived on it, and not many
    /// more than its fair share. With `v` virtual nodes per shard the
    /// expected share is keys/N; we allow a generous constant-factor
    /// slack (hash variance, small keyspace) that still rules out the
    /// keys*(N-1)/N a modulo scheme would remap.
    #[test]
    fn removal_remaps_only_the_victims_fair_share(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=8,
        victim_ix in 0usize..8,
    ) {
        let victim = victim_ix % shards;
        let mut ring = ring_of(seed, virtual_nodes, shards);
        let before = assignments(&ring, KEYS);
        ring.remove(victim);
        let after = assignments(&ring, KEYS);

        let mut moved = 0u64;
        for (b, a) in before.iter().zip(&after) {
            if b == a {
                continue;
            }
            // A key may only change shard if it was on the victim.
            prop_assert_eq!(*b, Some(victim), "a surviving shard's key moved");
            prop_assert!(a.is_some(), "key fell off a non-empty ring");
            moved += 1;
        }
        let fair_share = KEYS.div_ceil(shards as u64);
        let bound = fair_share * 5 / 2 + 8;
        prop_assert!(
            moved <= bound,
            "removal remapped {} keys; fair share {} (bound {})",
            moved, fair_share, bound
        );
    }

    /// Remove + re-insert is a no-op on the assignment: the ring sorts
    /// its points, so membership alone determines routing.
    #[test]
    fn reinsertion_restores_the_exact_prior_assignment(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=8,
        victim_ix in 0usize..8,
    ) {
        let victim = victim_ix % shards;
        let mut ring = ring_of(seed, virtual_nodes, shards);
        let before = assignments(&ring, KEYS);
        ring.remove(victim);
        ring.insert(victim);
        prop_assert_eq!(before, assignments(&ring, KEYS));
    }

    /// Two rings with the same (seed, virtual_nodes, membership) agree on
    /// every key even when the membership was built in reversed order —
    /// i.e. a restarted router reproduces the assignment exactly.
    #[test]
    fn assignment_is_deterministic_and_order_free(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=8,
    ) {
        let forward = ring_of(seed, virtual_nodes, shards);
        let mut reversed = HashRing::new(seed, virtual_nodes);
        for shard in (0..shards).rev() {
            reversed.insert(shard);
        }
        prop_assert_eq!(assignments(&forward, KEYS), assignments(&reversed, KEYS));
    }

    /// Replica placement: the primary is the ring owner, the standby is
    /// a *different* shard, and the whole group is duplicate-free — for
    /// every key, at every replica width the ring can satisfy.
    #[test]
    fn replica_groups_are_distinct_and_led_by_the_owner(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=8,
        replicas in 2usize..=4,
    ) {
        let ring = ring_of(seed, virtual_nodes, shards);
        for key in 0..KEYS {
            let group = ring.route_replicas(key, replicas);
            prop_assert_eq!(group.len(), replicas.min(shards));
            prop_assert_eq!(Some(group[0]), ring.route(key), "primary must be the owner");
            let mut dedup = group.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), group.len(), "replica group has a duplicate");
            prop_assert!(group.len() < 2 || group[0] != group[1], "primary == standby");
        }
    }

    /// Failover lands on the warm standby: removing a key's primary hands
    /// the key to exactly the shard `route_replicas` named second. This
    /// is the property that makes transparent replay correct — the
    /// standby is the new owner, not an arbitrary survivor.
    #[test]
    fn standby_is_the_removal_successor(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=8,
    ) {
        let ring = ring_of(seed, virtual_nodes, shards);
        for key in 0..KEYS {
            let group = ring.route_replicas(key, 2);
            prop_assert_eq!(group.len(), 2.min(shards));
            if group.len() < 2 {
                continue;
            }
            let mut without = ring.clone();
            without.remove(group[0]);
            prop_assert_eq!(
                without.route(key), Some(group[1]),
                "key {}'s failover owner is not its standby", key
            );
        }
    }

    /// Live migration (scale-out) moves only the bounded-remap ranges:
    /// every key either keeps its owner or moves TO the new shard, and
    /// the volume stays near the newcomer's fair share — never a full
    /// reshuffle.
    #[test]
    fn scale_out_moves_only_the_newcomers_ranges(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=7,
    ) {
        let mut ring = ring_of(seed, virtual_nodes, shards);
        let before = assignments(&ring, KEYS);
        let newcomer = shards;
        ring.insert(newcomer);
        let after = assignments(&ring, KEYS);
        let mut moved = 0u64;
        for (b, a) in before.iter().zip(&after) {
            if b == a {
                continue;
            }
            prop_assert_eq!(*a, Some(newcomer), "a migrated key went somewhere else");
            moved += 1;
        }
        let fair_share = KEYS.div_ceil(shards as u64 + 1);
        let bound = fair_share * 5 / 2 + 8;
        prop_assert!(
            moved <= bound,
            "scale-out remapped {} keys; fair share {} (bound {})",
            moved, fair_share, bound
        );
    }

    /// During the double-routing window every migrating key has >= 1
    /// serving owner: the newcomer (the post-cutover ring) names it, and
    /// falling back past the newcomer (the pre-cutover view — what the
    /// router does when the newcomer is not yet dialable) always names a
    /// previous owner that is still alive. Both views resolve, for every
    /// key, mid-migration.
    #[test]
    fn double_routing_window_always_has_an_owner(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=7,
    ) {
        let mut ring = ring_of(seed, virtual_nodes, shards);
        let before = assignments(&ring, KEYS);
        let newcomer = shards;
        ring.insert(newcomer);
        for key in 0..KEYS {
            let group = ring.route_replicas(key, 2);
            prop_assert!(!group.is_empty(), "key {} lost all owners mid-migration", key);
            if group[0] == newcomer {
                // The fallback past the newcomer must be the key's
                // pre-migration owner — the shard still holding its
                // state during the window.
                prop_assert_eq!(
                    Some(group[1]), before[key as usize],
                    "key {}'s fallback is not its previous owner", key
                );
            } else {
                // Non-migrating keys keep their owner through the window.
                prop_assert_eq!(Some(group[0]), before[key as usize]);
            }
        }
    }

    /// Rebalancing (vnode reweighting) only exchanges keys between the
    /// reweighted shards; everyone else's assignment is untouched, and
    /// the weight survives a remove/insert cycle (a revived shard keeps
    /// its rebalanced footprint).
    #[test]
    fn reweighting_is_local_and_persistent(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 3usize..=8,
        step in 8usize..=32,
    ) {
        let mut ring = ring_of(seed, virtual_nodes, shards);
        let before = assignments(&ring, KEYS);
        // Move `step` vnodes from shard 0 (hot) to shard 1 (cold).
        ring.set_vnodes(0, virtual_nodes - step.min(virtual_nodes - 1));
        ring.set_vnodes(1, virtual_nodes + step);
        let after = assignments(&ring, KEYS);
        for (key, (b, a)) in before.iter().zip(&after).enumerate() {
            if b == a {
                continue;
            }
            prop_assert!(
                *b == Some(0) || *a == Some(1),
                "key {} moved {:?} -> {:?} without touching a reweighted shard",
                key, b, a
            );
        }
        let snapshot = assignments(&ring, KEYS);
        ring.remove(0);
        ring.insert(0);
        ring.remove(1);
        ring.insert(1);
        prop_assert_eq!(snapshot, assignments(&ring, KEYS), "weights must persist");
    }

    /// Different seeds genuinely reshuffle (the seed is load-bearing, not
    /// decorative) while each individual seed spreads keys over every
    /// shard.
    #[test]
    fn every_shard_owns_keys(
        seed in 0u64..1_000_000,
        virtual_nodes in 48usize..=128,
        shards in 2usize..=8,
    ) {
        let ring = ring_of(seed, virtual_nodes, shards);
        let mut counts = vec![0u64; shards];
        for a in assignments(&ring, KEYS) {
            counts[a.expect("non-empty ring routes every key")] += 1;
        }
        for (shard, &owned) in counts.iter().enumerate() {
            prop_assert!(owned > 0, "shard {} owns none of {} keys", shard, KEYS);
        }
    }
}

// ---------------------------------------------------------------------
// Restart determinism at the router level, on both gateway backends: two
// independently-booted routers with the same ShardConfig seed agree on
// the full key→shard map (the property the ring tests prove, observed
// through the public ShardRouter surface).
// ---------------------------------------------------------------------

fn routers_agree_across_restart(backend: GatewayBackend) {
    let config = || ShardConfig {
        seed: 0x5EED,
        virtual_nodes: 64,
        gateway: GatewayConfig {
            backend,
            ..GatewayConfig::default()
        },
        ..ShardConfig::default()
    };
    let runtime = RuntimeConfig {
        num_workers: 1,
        ..RuntimeConfig::default()
    };
    let ramp = vec![0.95f32];
    let first = start_router(3, ramp.clone(), Duration::from_millis(1), runtime, config());
    let map: Vec<Option<usize>> = (0..KEYS).map(|k| first.shard_for_key(k)).collect();
    first.shutdown();
    let second = start_router(3, ramp, Duration::from_millis(1), runtime, config());
    let remap: Vec<Option<usize>> = (0..KEYS).map(|k| second.shard_for_key(k)).collect();
    second.shutdown();
    assert_eq!(
        map, remap,
        "router restart with the same seed must not remap"
    );
}

#[test]
fn routers_agree_across_restart_blocking() {
    routers_agree_across_restart(GatewayBackend::Blocking);
}

#[test]
fn routers_agree_across_restart_readiness() {
    routers_agree_across_restart(GatewayBackend::Readiness);
}
