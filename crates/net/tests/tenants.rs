//! Per-tenant admission over the wire: hard per-tenant caps bind at any
//! load, overload sheds by weighted fair share (the tenant that overshot
//! sheds first), and anonymous traffic keeps the legacy path.

mod common;

use common::start_gateway;
use eugene_net::{
    ClientConfig, ClientError, GatewayConfig, MultiplexClient, PendingInference, RejectReason,
    SubmitOptions, TenantQuota,
};
use eugene_serve::RuntimeConfig;
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn one_try() -> ClientConfig {
    ClientConfig {
        max_attempts: 1,
        ..ClientConfig::default()
    }
}

fn tenant(name: &str) -> SubmitOptions {
    SubmitOptions {
        tenant: Some(name.to_owned()),
        ..SubmitOptions::default()
    }
}

fn expect_tenant_shed(err: ClientError) -> Duration {
    match err {
        ClientError::Rejected {
            reason,
            retry_after,
        } => {
            assert_eq!(reason, RejectReason::TenantOverQuota);
            retry_after
        }
        other => panic!("expected TenantOverQuota reject, got {other:?}"),
    }
}

/// Polls the gateway snapshot until `tenant` holds `n` in-flight units,
/// ordering admission decisions deterministically.
fn await_in_flight(gateway: &eugene_net::Gateway, tenant: &str, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let in_flight = gateway
            .snapshot()
            .per_tenant
            .get(tenant)
            .map(|row| row.in_flight)
            .unwrap_or(0);
        if in_flight >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "tenant {tenant} never reached {n} in flight"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A hard per-tenant cap sheds only that tenant — other tenants and
/// anonymous clients ride through untouched.
#[test]
fn a_tenant_cap_sheds_only_that_tenant() {
    let mut quotas = HashMap::new();
    quotas.insert(
        "capped".to_owned(),
        TenantQuota {
            weight: 1.0,
            max_in_flight: Some(1),
        },
    );
    let gateway = start_gateway(
        vec![0.95],
        Duration::from_millis(500),
        RuntimeConfig {
            num_workers: 4,
            ..RuntimeConfig::default()
        },
        GatewayConfig {
            tenant_quotas: quotas,
            ..GatewayConfig::default()
        },
    );
    let client = MultiplexClient::new(gateway.local_addr(), one_try()).expect("connect");

    // Fill the capped tenant's single slot.
    let wedged = client
        .submit_with(
            "cap",
            &[3.0],
            Duration::from_secs(10),
            false,
            &tenant("capped"),
        )
        .expect("first request admitted");
    await_in_flight(&gateway, "capped", 1);

    // A second request for the same tenant bounces with a retry hint...
    let retry_after = expect_tenant_shed(
        client
            .infer_with("cap", &[4.0], Duration::from_secs(2), &tenant("capped"))
            .expect_err("cap binds"),
    );
    assert!(retry_after > Duration::ZERO, "shed carries a backoff hint");

    // ...while another tenant and an anonymous client sail through.
    let ok = client
        .infer_with("cap", &[5.0], Duration::from_secs(10), &tenant("other"))
        .expect("other tenant unaffected");
    assert_eq!(ok.predicted, Some(5));
    let ok = client
        .infer_with(
            "cap",
            &[6.0],
            Duration::from_secs(10),
            &SubmitOptions::default(),
        )
        .expect("anonymous unaffected");
    assert_eq!(ok.predicted, Some(6));

    let outcome = wedged
        .wait()
        .expect("capped tenant's admitted work finishes");
    assert_eq!(outcome.predicted, Some(3));

    let rows = gateway.snapshot().per_tenant;
    assert_eq!(rows["capped"].admitted, 1);
    assert_eq!(rows["capped"].shed, 1);
    assert_eq!(rows["other"].admitted, 1);
    assert_eq!(rows["other"].shed, 0);
    gateway.shutdown();
}

/// Past the high-water mark, the tenant that grew to its weighted fair
/// share sheds its own traffic first; the heavier tenant keeps being
/// admitted afterwards.
#[test]
fn overload_sheds_by_weighted_fair_share() {
    let mut quotas = HashMap::new();
    // Shares of hard_cap 8 at weights 3:1 → heavy 6, light 2.
    quotas.insert(
        "heavy".to_owned(),
        TenantQuota {
            weight: 3.0,
            max_in_flight: None,
        },
    );
    quotas.insert(
        "light".to_owned(),
        TenantQuota {
            weight: 1.0,
            max_in_flight: None,
        },
    );
    let gateway = start_gateway(
        vec![0.95],
        Duration::from_millis(1_500),
        RuntimeConfig {
            num_workers: 8,
            ..RuntimeConfig::default()
        },
        GatewayConfig {
            high_water: 2,
            hard_cap: 8,
            tenant_quotas: quotas,
            ..GatewayConfig::default()
        },
    );
    let client = MultiplexClient::new(gateway.local_addr(), one_try()).expect("connect");
    let mut held: Vec<PendingInference> = Vec::new();
    let mut wedge = |name: &str, n: u64| {
        held.push(
            client
                .submit_with(
                    "fair",
                    &[1.0],
                    Duration::from_secs(30),
                    false,
                    &tenant(name),
                )
                .expect("admitted"),
        );
        await_in_flight(&gateway, name, n);
    };

    // Heavy takes the gateway past high water, then keeps growing within
    // its share; light is admitted up to its own share.
    wedge("heavy", 1);
    wedge("heavy", 2);
    wedge("heavy", 3); // load 2 ≥ high_water, but 2 < share 6
    wedge("light", 1); // load 3, light 0 < share 2
    wedge("light", 2); // load 4, light 1 < share 2

    // Light is now at its fair share: its next request sheds...
    expect_tenant_shed(
        client
            .infer_with("fair", &[9.0], Duration::from_secs(2), &tenant("light"))
            .expect_err("light overshot its share"),
    );
    // ...while heavy — within its share — is still admitted, later in
    // time than light's shed.
    wedge("heavy", 4);

    for pending in held {
        let outcome = pending.wait().expect("admitted work completes");
        assert_eq!(outcome.predicted, Some(1));
    }
    let rows = gateway.snapshot().per_tenant;
    assert_eq!(rows["heavy"].admitted, 4);
    assert_eq!(rows["heavy"].shed, 0);
    assert_eq!(rows["light"].admitted, 2);
    assert_eq!(rows["light"].shed, 1);
    gateway.shutdown();
}
