//! Shared fixtures for eugene-net integration tests: a deterministic
//! staged engine (the serve crate's test engine is private) and a helper
//! that boots a full runtime + gateway on a loopback socket.

use eugene_net::{Gateway, GatewayConfig, ShardConfig, ShardRouter};
use eugene_sched::Fifo;
use eugene_serve::{EngineSession, InferenceEngine, RuntimeConfig, ServingRuntime, StageReport};
use std::sync::Arc;
use std::time::Duration;

/// Staged engine whose confidence walks a fixed ramp, one stage per call,
/// each stage costing `stage_time` of wall clock. The predicted label is
/// the first payload element truncated to an integer, so tests can check
/// payloads survive the wire round trip.
pub struct StagedTestEngine {
    pub ramp: Vec<f32>,
    pub stage_time: Duration,
}

impl InferenceEngine for StagedTestEngine {
    fn num_stages(&self) -> usize {
        self.ramp.len()
    }

    fn begin(&self, payload: &[f32]) -> Box<dyn EngineSession> {
        Box::new(StagedTestSession {
            ramp: self.ramp.clone(),
            stage_time: self.stage_time,
            done: 0,
            predicted: payload.first().copied().unwrap_or(0.0) as usize,
        })
    }
}

struct StagedTestSession {
    ramp: Vec<f32>,
    stage_time: Duration,
    done: usize,
    predicted: usize,
}

impl EngineSession for StagedTestSession {
    fn next_stage(&mut self) -> Option<StageReport> {
        if self.done >= self.ramp.len() {
            return None;
        }
        std::thread::sleep(self.stage_time);
        let report = StageReport {
            predicted: self.predicted,
            confidence: self.ramp[self.done],
        };
        self.done += 1;
        Some(report)
    }

    fn stages_done(&self) -> usize {
        self.done
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Boots a runtime over [`StagedTestEngine`] and a gateway on a free
/// loopback port.
#[allow(dead_code)]
pub fn start_gateway(
    ramp: Vec<f32>,
    stage_time: Duration,
    runtime_config: RuntimeConfig,
    gateway_config: GatewayConfig,
) -> Gateway {
    let engine = Arc::new(StagedTestEngine { ramp, stage_time });
    let runtime = ServingRuntime::start(engine, Box::new(Fifo::new()), runtime_config);
    Gateway::start(runtime, gateway_config).expect("bind loopback gateway")
}

/// One fresh runtime over [`StagedTestEngine`], for booting or reviving a
/// shard.
#[allow(dead_code)]
pub fn shard_runtime(
    ramp: Vec<f32>,
    stage_time: Duration,
    runtime_config: &RuntimeConfig,
) -> ServingRuntime {
    let engine = Arc::new(StagedTestEngine { ramp, stage_time });
    ServingRuntime::start(engine, Box::new(Fifo::new()), *runtime_config)
}

/// Boots `shards` runtimes over [`StagedTestEngine`] behind a
/// [`ShardRouter`] on a free loopback port.
#[allow(dead_code)]
pub fn start_router(
    shards: usize,
    ramp: Vec<f32>,
    stage_time: Duration,
    runtime_config: RuntimeConfig,
    shard_config: ShardConfig,
) -> ShardRouter {
    let runtimes = (0..shards)
        .map(|_| shard_runtime(ramp.clone(), stage_time, &runtime_config))
        .collect();
    ShardRouter::start(runtimes, shard_config).expect("bind loopback shard router")
}
