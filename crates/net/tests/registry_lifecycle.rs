//! Registry lifecycle over the wire: models load and unload at runtime —
//! with requests in flight — on both connection backends, and the
//! unloaded generation's counters survive in the gateway snapshot.

mod common;

use common::shard_runtime;
use eugene_net::{
    ClientConfig, ClientError, Gateway, GatewayBackend, GatewayConfig, MultiplexClient,
    RejectReason, SubmitOptions,
};
use eugene_serve::{ModelRegistry, RuntimeConfig};
use std::time::{Duration, Instant};

fn fast_runtime() -> RuntimeConfig {
    RuntimeConfig {
        num_workers: 2,
        ..RuntimeConfig::default()
    }
}

/// One attempt, so a Reject surfaces as the typed error instead of being
/// retried into a deadline.
fn one_try() -> ClientConfig {
    ClientConfig {
        max_attempts: 1,
        ..ClientConfig::default()
    }
}

fn to(model: &str) -> SubmitOptions {
    SubmitOptions {
        model: Some(model.to_owned()),
        ..SubmitOptions::default()
    }
}

/// Polls until `model` shows at least `n` submitted requests, so a test
/// can order registry mutations against in-flight traffic.
fn await_submitted(registry: &ModelRegistry, model: &str, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let submitted = registry
            .stats_of(model)
            .map(|s| s.snapshot().submitted)
            .unwrap_or(0);
        if submitted >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "model {model} never saw {n} submissions"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn lifecycle_with_requests_in_flight(backend: GatewayBackend) {
    let slow = Duration::from_millis(150);
    let registry = ModelRegistry::new("a");
    registry.load("a", shard_runtime(vec![0.95], slow, &fast_runtime()));
    let gateway = Gateway::start_registry(
        registry.clone(),
        GatewayConfig {
            backend,
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback gateway");
    let client = MultiplexClient::new(gateway.local_addr(), one_try()).expect("connect");

    // Wedge model "a" with a slow in-flight request.
    let pending = client
        .submit_with(
            "lifecycle",
            &[7.0],
            Duration::from_secs(10),
            false,
            &to("a"),
        )
        .expect("submit to a");
    await_submitted(&registry, "a", 1);

    // Load "b" while "a" is mid-request; it serves immediately.
    registry.load(
        "b",
        shard_runtime(vec![0.9], Duration::ZERO, &fast_runtime()),
    );
    let outcome = client
        .infer_with("lifecycle", &[5.0], Duration::from_secs(10), &to("b"))
        .expect("freshly loaded model serves");
    assert_eq!(outcome.predicted, Some(5));

    // Unload "a": the wedged request drains to completion, not to an
    // error.
    assert!(registry.unload("a"), "a was loaded");
    let outcome = pending.wait().expect("in-flight request survives unload");
    assert_eq!(outcome.predicted, Some(7));

    // New submissions to the unloaded name are cleanly rejected.
    let err = client
        .infer_with("lifecycle", &[1.0], Duration::from_secs(2), &to("a"))
        .expect_err("unloaded model must reject");
    match err {
        ClientError::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::UnknownModel);
        }
        other => panic!("expected UnknownModel reject, got {other:?}"),
    }

    // Only the survivor is listed, but the snapshot still carries the
    // unloaded generation's work: counters are retired, never lost.
    let names: Vec<String> = registry.models().into_iter().map(|(n, _)| n).collect();
    assert_eq!(names, ["b"]);
    let snapshot = gateway.snapshot();
    assert_eq!(snapshot.per_model["a"].completed, 1);
    assert_eq!(snapshot.per_model["b"].completed, 1);

    drop(client);
    gateway.shutdown();
}

#[test]
fn models_load_and_unload_with_requests_in_flight_on_blocking() {
    lifecycle_with_requests_in_flight(GatewayBackend::Blocking);
}

#[test]
fn models_load_and_unload_with_requests_in_flight_on_readiness() {
    lifecycle_with_requests_in_flight(GatewayBackend::Readiness);
}

/// Reloading an existing name swaps generations without dropping the
/// name: the version bumps and both generations' work aggregates.
#[test]
fn reload_swaps_generations_under_traffic() {
    let registry = ModelRegistry::new("m");
    registry.load(
        "m",
        shard_runtime(vec![0.9], Duration::ZERO, &fast_runtime()),
    );
    let gateway = Gateway::start_registry(registry.clone(), GatewayConfig::default())
        .expect("bind loopback gateway");
    let client = MultiplexClient::new(gateway.local_addr(), one_try()).expect("connect");

    let outcome = client
        .infer_with("reload", &[3.0], Duration::from_secs(10), &to("m"))
        .expect("first generation serves");
    assert_eq!(outcome.predicted, Some(3));
    let v1 = registry.models()[0].1;

    registry.load(
        "m",
        shard_runtime(vec![0.9], Duration::ZERO, &fast_runtime()),
    );
    let v2 = registry.models()[0].1;
    assert!(v2 > v1, "reload bumps the version ({v1} -> {v2})");

    let outcome = client
        .infer_with("reload", &[4.0], Duration::from_secs(10), &to("m"))
        .expect("second generation serves");
    assert_eq!(outcome.predicted, Some(4));
    assert_eq!(
        gateway.snapshot().per_model["m"].completed,
        2,
        "both generations' completions aggregate under the name"
    );

    drop(client);
    gateway.shutdown();
}
