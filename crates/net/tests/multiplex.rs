//! Multiplexing tests: many concurrent tagged requests over a single TCP
//! connection, demuxed correctly under interleaving, reordering, hard-cap
//! pressure, and shutdown.

mod common;

use common::start_gateway;
use eugene_net::wire::{self, Frame, FrameBuffer, WireResponse, PROTOCOL_VERSION};
use eugene_net::{ClientConfig, GatewayConfig, MultiplexClient};
use eugene_serve::RuntimeConfig;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::time::Duration;

fn fast_runtime(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        num_workers: workers,
        ..RuntimeConfig::default()
    }
}

fn open_config() -> GatewayConfig {
    GatewayConfig {
        high_water: 1_000_000,
        hard_cap: 2_000_000,
        ..GatewayConfig::default()
    }
}

/// ≥64 interleaved in-flight tags on ONE connection: every `Final` must
/// reach the request that submitted it, and `want_progress` streams
/// (interleaved mid-flight with plain requests) must carry only their own
/// tag's stage reports.
#[test]
fn ninety_six_interleaved_tags_demux_on_one_connection() {
    const N: usize = 96;
    let ramp = vec![0.3, 0.6, 0.9];
    let gateway = start_gateway(
        ramp.clone(),
        Duration::from_millis(2),
        fast_runtime(4),
        open_config(),
    );
    let status = gateway.status();
    let client = MultiplexClient::new(gateway.local_addr(), ClientConfig::default())
        .expect("resolve loopback");

    // Pipeline every submit before waiting on any: all N are in flight on
    // the single socket at once.
    let pending: Vec<_> = (0..N)
        .map(|i| {
            let want_progress = i % 2 == 0;
            client
                .submit(
                    "interactive",
                    &[i as f32],
                    Duration::from_secs(10),
                    want_progress,
                )
                .expect("pipelined submit")
        })
        .collect();

    for (i, p) in pending.into_iter().enumerate() {
        let want_progress = i % 2 == 0;
        let outcome = p.wait().unwrap_or_else(|e| panic!("request {i}: {e}"));
        assert_eq!(
            outcome.predicted,
            Some(i as u64),
            "Final for tag {i} must carry request {i}'s prediction"
        );
        assert!(!outcome.expired, "request {i} expired");
        if want_progress {
            assert_eq!(
                outcome.stage_updates.len(),
                ramp.len(),
                "request {i} must stream one update per stage"
            );
            for update in &outcome.stage_updates {
                assert_eq!(
                    update.predicted, i as u64,
                    "stage update for tag {i} carried another tag's payload"
                );
            }
        } else {
            assert!(
                outcome.stage_updates.is_empty(),
                "request {i} did not ask for progress but got {} updates",
                outcome.stage_updates.len()
            );
        }
    }

    assert_eq!(client.stale_frames(), 0, "no frame may go undelivered");
    assert!(
        status.peak_in_flight() >= 64,
        "the single connection must have sustained >=64 concurrent \
         in-flight requests, saw peak {}",
        status.peak_in_flight()
    );
    assert_eq!(status.connections_opened(), 1, "exactly one connection");
}

/// Concurrent multiplexed submits hammer a tiny hard cap: the atomic
/// admission reservation must keep the in-flight peak at or below
/// `hard_cap` — the old read-then-submit check raced past it.
#[test]
fn hard_cap_holds_under_concurrent_multiplexed_submits() {
    const HARD_CAP: u64 = 16;
    let gateway = start_gateway(
        vec![0.5, 0.95],
        Duration::from_millis(3),
        fast_runtime(4),
        GatewayConfig {
            high_water: 8,
            hard_cap: HARD_CAP,
            ..GatewayConfig::default()
        },
    );
    let status = gateway.status();
    let client = std::sync::Arc::new(
        MultiplexClient::new(gateway.local_addr(), ClientConfig::default())
            .expect("resolve loopback"),
    );

    let mut handles = Vec::new();
    for worker in 0..24 {
        let client = std::sync::Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            let mut answered = 0u64;
            let mut rejected = 0u64;
            for i in 0..15 {
                match client.submit(
                    "anon",
                    &[(worker * 100 + i) as f32],
                    Duration::from_secs(5),
                    false,
                ) {
                    Ok(pending) => match pending.wait() {
                        Ok(_) => answered += 1,
                        Err(eugene_net::ClientError::Rejected { .. }) => rejected += 1,
                        Err(e) => panic!("worker {worker} request {i}: {e}"),
                    },
                    Err(e) => panic!("worker {worker} submit {i}: {e}"),
                }
            }
            (answered, rejected)
        }));
    }
    let (mut answered, mut rejected) = (0u64, 0u64);
    for handle in handles {
        let (a, r) = handle.join().expect("submit worker panicked");
        answered += a;
        rejected += r;
    }

    assert!(
        status.peak_in_flight() <= HARD_CAP,
        "in-flight load must never exceed hard_cap={HARD_CAP}, peaked at {}",
        status.peak_in_flight()
    );
    assert_eq!(status.in_flight_reserved(), 0, "every slot released");
    assert!(answered > 0, "some requests must get through");
    assert!(
        rejected > 0,
        "24 submitters against cap 16 must trip admission at least once"
    );
}

/// Regression for the per-submit forwarder-thread leak: a connection that
/// carries 10k requests must hold a fixed handful of gateway threads, not
/// 10k `JoinHandle`s.
#[test]
fn ten_thousand_requests_on_one_connection_spawn_bounded_threads() {
    const TOTAL: usize = 10_000;
    const WINDOW: usize = 250;
    let gateway = start_gateway(vec![0.9], Duration::ZERO, fast_runtime(8), open_config());
    let status = gateway.status();
    let client = MultiplexClient::new(gateway.local_addr(), ClientConfig::default())
        .expect("resolve loopback");

    let mut done = 0usize;
    while done < TOTAL {
        let window = WINDOW.min(TOTAL - done);
        let pending: Vec<_> = (0..window)
            .map(|i| {
                client
                    .submit(
                        "batch",
                        &[(done + i) as f32],
                        Duration::from_secs(10),
                        false,
                    )
                    .expect("submit")
            })
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            let outcome = p.wait().expect("wait");
            assert_eq!(outcome.predicted, Some((done + i) as u64));
        }
        done += window;
    }

    // One reader + dispatch_workers dispatchers for the single connection;
    // nothing per request.
    let per_connection = 1 + GatewayConfig::default().dispatch_workers as u64;
    assert_eq!(status.connections_opened(), 1);
    assert!(
        status.threads_spawned() <= per_connection,
        "10k requests spawned {} gateway threads — must stay at the \
         per-connection constant {per_connection}",
        status.threads_spawned()
    );
    assert_eq!(gateway.tracked_connections(), 1, "one live handle tracked");
}

/// Gateway shutdown with a pipeline full of in-flight multiplexed
/// requests: every one of them still gets its `Final` during the drain.
#[test]
fn shutdown_drains_every_in_flight_multiplexed_request() {
    const N: usize = 8;
    let gateway = start_gateway(
        vec![0.4, 0.7, 0.95],
        Duration::from_millis(10),
        fast_runtime(4),
        open_config(),
    );
    let client = MultiplexClient::new(gateway.local_addr(), ClientConfig::default())
        .expect("resolve loopback");
    let pending: Vec<_> = (0..N)
        .map(|i| {
            client
                .submit("interactive", &[i as f32], Duration::from_secs(10), false)
                .expect("submit")
        })
        .collect();
    // Wait until every submit has been read and admitted (the drain
    // guarantee covers admitted requests, not bytes still in the socket
    // buffer), then shut down while all N are in flight.
    let status = gateway.status();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while status.in_flight_reserved() < N as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "gateway never admitted all {N} submits"
        );
        std::thread::yield_now();
    }
    gateway.shutdown();
    for (i, p) in pending.into_iter().enumerate() {
        let outcome = p
            .wait()
            .unwrap_or_else(|e| panic!("request {i} lost in drain: {e}"));
        assert_eq!(outcome.predicted, Some(i as u64));
    }
}

/// Hand-rolled wire server that answers a batch of submits in an
/// arbitrary permuted order; returns the listening address.
fn permuting_fake_server(n: usize, order: Vec<usize>) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut buffer = FrameBuffer::new();
        // Handshake.
        loop {
            if let Some(Frame::Hello { .. }) = buffer.poll(&mut stream).expect("read hello") {
                break;
            }
        }
        wire::write_frame(
            &mut stream,
            &Frame::HelloAck {
                version: PROTOCOL_VERSION,
            },
        )
        .expect("ack");
        // Collect all n submits first (they arrive pipelined), then answer
        // in the permuted order, streaming a StageUpdate before each Final
        // for requests that asked for progress.
        let mut submits = Vec::with_capacity(n);
        while submits.len() < n {
            if let Some(Frame::Submit(submit)) = buffer.poll(&mut stream).expect("read submit") {
                submits.push(submit);
            }
        }
        for &i in &order {
            let submit = &submits[i];
            if submit.want_progress {
                wire::write_frame(
                    &mut stream,
                    &Frame::StageUpdate {
                        client_tag: submit.client_tag,
                        stage: 0,
                        confidence: 0.5,
                        predicted: submit.client_tag,
                    },
                )
                .expect("stage update");
            }
            wire::write_frame(
                &mut stream,
                &Frame::Final {
                    client_tag: submit.client_tag,
                    response: WireResponse {
                        predicted: Some(submit.client_tag),
                        confidence: Some(0.9),
                        stages_executed: 1,
                        expired: false,
                        latency_us: 1,
                        degraded: false,
                    },
                },
            )
            .expect("final");
        }
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever order the server completes tags in, every answer must be
    /// routed to the request that owns the tag.
    #[test]
    fn out_of_order_tag_completion_routes_correctly(
        n in 2usize..24,
        seed in any::<u64>(),
    ) {
        // Fisher–Yates from the seed: the vendored proptest has no
        // shuffle strategy, so derive the permutation deterministically.
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }

        let addr = permuting_fake_server(n, order);
        let client = MultiplexClient::new(addr, ClientConfig::default())
            .expect("resolve fake server");
        let pending: Vec<_> = (0..n)
            .map(|i| {
                client
                    .submit("prop", &[i as f32], Duration::from_secs(5), i % 2 == 0)
                    .expect("submit")
            })
            .collect();
        for p in pending {
            let tag = p.tag();
            let want_progress = tag % 2 == 0;
            let outcome = p.wait().expect("wait");
            prop_assert_eq!(
                outcome.predicted,
                Some(tag),
                "answer for tag {} went to the wrong request",
                tag
            );
            if want_progress {
                prop_assert_eq!(outcome.stage_updates.len(), 1);
                prop_assert_eq!(outcome.stage_updates[0].predicted, tag);
            } else {
                prop_assert!(outcome.stage_updates.is_empty());
            }
        }
        prop_assert_eq!(client.stale_frames(), 0);
    }
}
