//! Connection-lifecycle tests: a long-running gateway under connection
//! churn must not accumulate handles, threads, or open-connection counts.

mod common;

use common::start_gateway;
use eugene_net::{ClientConfig, EugeneClient, GatewayConfig};
use eugene_serve::RuntimeConfig;
use std::time::{Duration, Instant};

/// Sixty connect → infer → disconnect cycles: the gateway's tracked
/// `JoinHandle` vector must stay bounded by *live* connections (finished
/// handles are reaped on each accept pass), not grow with every
/// connection ever accepted.
#[test]
fn connection_churn_keeps_tracked_handles_bounded() {
    const CYCLES: usize = 60;
    let gateway = start_gateway(
        vec![0.9],
        Duration::ZERO,
        RuntimeConfig {
            num_workers: 2,
            ..RuntimeConfig::default()
        },
        GatewayConfig {
            high_water: 1_000_000,
            hard_cap: 2_000_000,
            ..GatewayConfig::default()
        },
    );
    let addr = gateway.local_addr();
    let status = gateway.status();

    for cycle in 0..CYCLES {
        let mut client =
            EugeneClient::new(addr, ClientConfig::default()).expect("resolve loopback");
        let outcome = client
            .infer("churn", &[cycle as f32], Duration::from_secs(5))
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
        assert_eq!(outcome.predicted, Some(cycle as u64));
        drop(client); // closes the socket; the server side tears down
        if cycle % 10 == 9 {
            assert!(
                gateway.tracked_connections() <= 16,
                "cycle {cycle}: {} tracked handles — the reaper is not \
                 keeping up with churn",
                gateway.tracked_connections()
            );
        }
    }

    // Give the accept loop a few passes to reap the tail, then require
    // the tracked set to be (near) empty: every connection is closed.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let tracked = gateway.tracked_connections();
        if tracked <= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{tracked} handles still tracked long after all {CYCLES} \
             connections closed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(status.connections_opened(), CYCLES as u64);
    assert!(
        !status.accept_failed(),
        "accept loop must survive plain churn"
    );
}
