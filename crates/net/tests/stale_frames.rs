//! Stale-frame handling: frames addressed to a tag that is no longer
//! pending (timed-out attempts, old tags after reconnect) must be counted
//! and dropped — never delivered, and never allowed to influence backoff.

mod common;

use common::start_gateway;
use eugene_net::wire::{self, Frame, FrameBuffer, WireResponse, PROTOCOL_VERSION};
use eugene_net::{ClientConfig, ClientError, EugeneClient, GatewayConfig, MultiplexClient};
use eugene_serve::RuntimeConfig;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// Fake gateway: acks the handshake, reads one submit (tag T), then sends
/// a burst of frames for a *different* tag — including a `Reject` with a
/// poisonous 60s retry hint — before finally answering T.
fn stale_then_answer_server() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut buffer = FrameBuffer::new();
        loop {
            if let Some(Frame::Hello { .. }) = buffer.poll(&mut stream).expect("read hello") {
                break;
            }
        }
        wire::write_frame(
            &mut stream,
            &Frame::HelloAck {
                version: PROTOCOL_VERSION,
            },
        )
        .expect("ack");
        let submit = loop {
            if let Some(Frame::Submit(submit)) = buffer.poll(&mut stream).expect("read submit") {
                break submit;
            }
        };
        let stale_tag = submit.client_tag.wrapping_add(999);
        // Three stale frames for a tag the client is not waiting on...
        wire::write_frame(
            &mut stream,
            &Frame::StageUpdate {
                client_tag: stale_tag,
                stage: 0,
                confidence: 0.4,
                predicted: 7,
            },
        )
        .expect("stale stage");
        wire::write_frame(
            &mut stream,
            &Frame::Reject {
                client_tag: stale_tag,
                retry_after_ms: 60_000, // must NOT become anyone's backoff floor
                reason: wire::RejectReason::Overload,
            },
        )
        .expect("stale reject");
        wire::write_frame(
            &mut stream,
            &Frame::Final {
                client_tag: stale_tag,
                response: WireResponse {
                    predicted: Some(7),
                    confidence: Some(0.4),
                    stages_executed: 1,
                    expired: false,
                    latency_us: 1,
                    degraded: false,
                },
            },
        )
        .expect("stale final");
        // ...then the real answer.
        wire::write_frame(
            &mut stream,
            &Frame::Final {
                client_tag: submit.client_tag,
                response: WireResponse {
                    predicted: Some(42),
                    confidence: Some(0.9),
                    stages_executed: 1,
                    expired: false,
                    latency_us: 1,
                    degraded: false,
                },
            },
        )
        .expect("real final");
    });
    addr
}

#[test]
fn serial_client_counts_and_ignores_stale_frames() {
    let addr = stale_then_answer_server();
    let mut client = EugeneClient::new(addr, ClientConfig::default()).expect("resolve");
    let started = Instant::now();
    let outcome = client
        .infer("stale", &[1.0], Duration::from_secs(5))
        .expect("real final must arrive");
    assert_eq!(outcome.predicted, Some(42));
    assert_eq!(
        outcome.attempts, 1,
        "a stale Reject must not be treated as a rejection of this attempt"
    );
    assert_eq!(client.stale_frames(), 3, "all three stale frames counted");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the stale Reject's 60s retry hint must not delay anything"
    );
}

#[test]
fn mux_client_counts_and_ignores_stale_frames() {
    let addr = stale_then_answer_server();
    let client = MultiplexClient::new(addr, ClientConfig::default()).expect("resolve");
    let outcome = client
        .submit("stale", &[1.0], Duration::from_secs(5), false)
        .expect("submit")
        .wait()
        .expect("real final must arrive");
    assert_eq!(outcome.predicted, Some(42));
    // The reader may still be mid-burst when wait() returns; give it a
    // moment to count the stragglers.
    let deadline = Instant::now() + Duration::from_secs(2);
    while client.stale_frames() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(client.stale_frames(), 3, "all three stale frames counted");
}

/// A request whose client-side deadline lapses is abandoned: its late
/// `Final` counts as stale, and — unlike the serial client, which drops
/// the socket — the multiplexed connection keeps serving other requests.
#[test]
fn abandoned_deadline_leaves_the_pipeline_usable() {
    let gateway = start_gateway(
        vec![0.5, 0.8, 0.95],
        Duration::from_millis(25),
        RuntimeConfig {
            num_workers: 2,
            // Slow deadline daemon: the server's expired Final for the
            // abandoned request arrives well after the client gave up,
            // so the "late Final counts as stale" path is deterministic.
            daemon_poll: Duration::from_millis(100),
            ..RuntimeConfig::default()
        },
        GatewayConfig {
            high_water: 1_000_000,
            hard_cap: 2_000_000,
            ..GatewayConfig::default()
        },
    );
    let client =
        MultiplexClient::new(gateway.local_addr(), ClientConfig::default()).expect("resolve");

    // 3 stages x 25ms ≈ 75ms of work against a 15ms budget: the client
    // gives up long before the server's answer can arrive.
    let result = client
        .submit("impatient", &[5.0], Duration::from_millis(15), false)
        .expect("submit")
        .wait();
    match result {
        Err(ClientError::DeadlineExhausted) => {}
        other => panic!("expected DeadlineExhausted, got {other:?}"),
    }

    // The same connection must still answer new requests correctly.
    let outcome = client
        .submit("patient", &[9.0], Duration::from_secs(10), false)
        .expect("submit")
        .wait()
        .expect("pipeline must survive an abandoned request");
    assert_eq!(outcome.predicted, Some(9));

    // The abandoned tag's late Final (the server's expired answer) is
    // counted as stale once it straggles in.
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.stale_frames() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        client.stale_frames() >= 1,
        "the abandoned request's late Final must be counted as stale"
    );
    assert!(client.is_connected(), "deadline must not kill the pipe");
}
