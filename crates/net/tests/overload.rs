//! Overload degradation suite: at 2x saturation with wide-open admission,
//! `OverloadPolicy::Degrade` must answer *every* admitted request with a
//! usable partial result — no rejects after admission, no empty-handed
//! expirations, no zero-stage finals — and deliver at least as much
//! aggregate utility as the kill-based baseline, on both gateway
//! backends.
//!
//! The workload is sized so full-depth service is infeasible (offered
//! rate is twice what the worker pool can run through all stages) but
//! first-stage service is comfortably feasible, which is exactly the
//! regime the paper's imprecise-computation argument targets: a shallow
//! answer for everyone beats a perfect answer for half.

mod common;

use common::start_gateway;
use eugene_net::{
    loadgen, ClassSpec, GatewayBackend, GatewayConfig, LoadReport, LoadgenConfig, LoadgenMode,
};
use eugene_serve::{OverloadPolicy, RuntimeConfig};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the two backend tests: each drives a saturating workload,
/// and on a small CI box running both at once adds cross-test scheduler
/// noise to latency margins that are part of the assertions.
static SERIAL: Mutex<()> = Mutex::new(());

/// Confidence ramp of the staged test engine: concave, so early stages
/// carry most of the utility — the shape the density scheduler exploits.
const RAMP: [f32; 3] = [0.6, 0.8, 0.95];
/// Wall-clock cost of one stage execution. Deliberately long: stages
/// "run" by sleeping, so on a small CI box (this one has a single core
/// under a few hundred test threads) the binding resource is CPU for the
/// wire/dispatch path, not the stage sleeps. Long stages keep the
/// offered *rate* low in absolute terms — the 2x-saturation ratio is
/// unchanged — so scheduler jitter and per-request networking CPU stay a
/// small fraction of every margin in the test.
const STAGE_MS: u64 = 25;
const WORKERS: usize = 4;
/// Per-request deadline: enough for full depth when idle (3 x 25ms),
/// far too little for full depth at 2x saturation (the backlog a
/// 2x-overloaded pool accumulates over the run dwarfs any per-request
/// budget). The slack over one stage time is the first-stage
/// feasibility window — ~9 stage times, so a transient arrival burst
/// cannot starve anyone out of stage 0.
const BUDGET_MS: u64 = 250;
const TOTAL_REQUESTS: usize = 300;

/// Offered rate: 2x the pool's full-depth capacity
/// (`workers / (stages * stage_time)`), i.e. past the saturation knee —
/// but only ~2/3 of first-stage-only capacity, so anytime degradation
/// has room to give everyone a shallow answer.
fn overload_rate_hz() -> f64 {
    let full_depth_capacity = WORKERS as f64 / (RAMP.len() as f64 * STAGE_MS as f64 / 1e3);
    2.0 * full_depth_capacity
}

fn runtime_config(overload: OverloadPolicy) -> RuntimeConfig {
    RuntimeConfig {
        num_workers: WORKERS,
        overload,
        ..RuntimeConfig::default()
    }
}

/// Admission wide open: overload handling is the runtime's job here, not
/// the gateway's — nothing may be shed at the door.
fn wide_open(backend: GatewayBackend) -> GatewayConfig {
    GatewayConfig {
        high_water: 1_000_000,
        hard_cap: 2_000_000,
        backend,
        // Cover the pipelined in-flight depth on the Blocking backend:
        // otherwise submits queue in the per-connection dispatcher pool
        // with their budgets burning before the runtime ever sees them.
        dispatch_workers: 32,
        ..GatewayConfig::default()
    }
}

fn drive(overload: OverloadPolicy, backend: GatewayBackend, seed: u64) -> LoadReport {
    let gateway = start_gateway(
        RAMP.to_vec(),
        Duration::from_millis(STAGE_MS),
        runtime_config(overload),
        wide_open(backend),
    );
    let report = loadgen::run(&LoadgenConfig {
        addr: gateway.local_addr().to_string(),
        connections: 4,
        total_requests: TOTAL_REQUESTS,
        rate_hz: overload_rate_hz(),
        classes: vec![ClassSpec {
            name: "overload".to_owned(),
            budget_ms: BUDGET_MS,
            weight: 1.0,
            payload_len: 4,
        }],
        seed,
        client: eugene_net::ClientConfig::default(),
        // Pipelined submitters so the open-loop schedule is actually
        // offered: serial per-connection clients would throttle the load
        // to `connections / latency` and never push past the knee.
        mode: LoadgenMode::Multiplexed { concurrency: 64 },
        keyspace: None,
        tenants: Vec::new(),
        // An anytime answer produced at the server's deadline needs a
        // moment to cross the wire; without this the client abandons it
        // and the miss is a measurement artifact, not server behavior.
        // Sized for single-core CI: the reader thread that would deliver
        // the answer may wait out a long run-queue first.
        wait_grace: Duration::from_millis(200),
    });
    gateway.shutdown();
    report
}

fn assert_degrades_cleanly(report: &LoadReport, backend: GatewayBackend) {
    assert_eq!(
        report.rejected, 0,
        "[{backend:?}] wide-open admission must not reject: {report:?}"
    );
    assert_eq!(
        report.errors, 0,
        "[{backend:?}] no wire errors expected: {report:?}"
    );
    assert_eq!(
        report.expired, 0,
        "[{backend:?}] Degrade mode must convert every would-be kill into \
         an early-exited answer: {report:?}"
    );
    assert_eq!(
        report.zero_stage_finals, 0,
        "[{backend:?}] every Final must carry at least one executed stage: \
         {report:?}"
    );
    assert_eq!(
        report.completed, report.requests,
        "[{backend:?}] every admitted request answered: {report:?}"
    );
    assert!(
        report.degraded > 0,
        "[{backend:?}] 2x saturation must actually force degradation \
         (otherwise this suite is not testing overload): {report:?}"
    );
    assert!(
        report.mean_stages >= 1.0 && report.mean_stages < RAMP.len() as f64,
        "[{backend:?}] degraded service runs some but not all stages, \
         got mean_stages={}",
        report.mean_stages
    );
}

#[test]
fn degrade_mode_answers_everyone_at_twice_saturation_blocking() {
    let _serial = SERIAL.lock().unwrap();
    let degrade = drive(OverloadPolicy::Degrade, GatewayBackend::Blocking, 11);
    assert_degrades_cleanly(&degrade, GatewayBackend::Blocking);

    // Kill baseline on the identical workload: the daemon's kills throw
    // completed stage work away, so delivered utility must not beat the
    // anytime answers.
    let kill = drive(OverloadPolicy::Kill, GatewayBackend::Blocking, 11);
    assert!(
        kill.expired > 0,
        "kill baseline at 2x saturation must actually kill: {kill:?}"
    );
    assert!(
        degrade.aggregate_utility >= kill.aggregate_utility,
        "anytime degradation must deliver at least the kill baseline's \
         utility: degrade={} kill={}",
        degrade.aggregate_utility,
        kill.aggregate_utility
    );
}

#[test]
fn degrade_mode_answers_everyone_at_twice_saturation_readiness() {
    let _serial = SERIAL.lock().unwrap();
    let degrade = drive(OverloadPolicy::Degrade, GatewayBackend::Readiness, 13);
    assert_degrades_cleanly(&degrade, GatewayBackend::Readiness);

    let kill = drive(OverloadPolicy::Kill, GatewayBackend::Readiness, 13);
    assert!(
        kill.expired > 0,
        "kill baseline at 2x saturation must actually kill: {kill:?}"
    );
    assert!(
        degrade.aggregate_utility >= kill.aggregate_utility,
        "anytime degradation must deliver at least the kill baseline's \
         utility: degrade={} kill={}",
        degrade.aggregate_utility,
        kill.aggregate_utility
    );
}
