//! End-to-end loopback tests: a real runtime behind a real TCP gateway,
//! exercised by real clients.

mod common;

use common::start_gateway;
use eugene_net::{ClientConfig, ClientError, EugeneClient, GatewayConfig};
use eugene_serve::RuntimeConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn fast_runtime(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        num_workers: workers,
        ..RuntimeConfig::default()
    }
}

fn open_config() -> GatewayConfig {
    // Effectively no admission control: these tests measure delivery.
    GatewayConfig {
        high_water: 1_000_000,
        hard_cap: 2_000_000,
        ..GatewayConfig::default()
    }
}

#[test]
fn two_hundred_concurrent_requests_across_classes_zero_lost() {
    let gateway = start_gateway(
        vec![0.3, 0.6, 0.9],
        Duration::ZERO,
        fast_runtime(8),
        open_config(),
    );
    let addr = gateway.local_addr();

    const CONNECTIONS: usize = 40;
    const PER_CONNECTION: usize = 6; // 240 requests total
    let classes = ["interactive", "batch"];
    let completed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(CONNECTIONS));
    let mut handles = Vec::new();
    for conn in 0..CONNECTIONS {
        let completed = Arc::clone(&completed);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = EugeneClient::new(
                addr,
                ClientConfig {
                    seed: conn as u64,
                    ..ClientConfig::default()
                },
            )
            .expect("resolve loopback");
            barrier.wait();
            for i in 0..PER_CONNECTION {
                let class = classes[(conn + i) % classes.len()];
                let label = (conn * PER_CONNECTION + i) as f32;
                let outcome = client
                    .infer(class, &[label, 1.0, 2.0], Duration::from_secs(30))
                    .expect("request must not be lost");
                assert_eq!(outcome.predicted, Some(label as u64), "payload round-trips");
                assert!(!outcome.expired);
                assert_eq!(outcome.stages_executed, 3);
                completed.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread panicked");
    }
    assert_eq!(
        completed.load(Ordering::Relaxed),
        (CONNECTIONS * PER_CONNECTION) as u64,
        "every single request must be answered"
    );
    gateway.shutdown();
}

#[test]
fn overload_sheds_then_recovers() {
    // One slow worker and a tiny admission window: a synchronized burst
    // must overflow it.
    let gateway = start_gateway(
        vec![0.5, 0.9],
        Duration::from_millis(20),
        fast_runtime(1),
        GatewayConfig {
            high_water: 2,
            hard_cap: 4,
            ..GatewayConfig::default()
        },
    );
    let addr = gateway.local_addr();

    const BURST: usize = 16;
    let barrier = Arc::new(Barrier::new(BURST));
    let mut handles = Vec::new();
    for i in 0..BURST {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = EugeneClient::new(
                addr,
                ClientConfig {
                    max_attempts: 1, // observe the raw admission decision
                    seed: i as u64,
                    ..ClientConfig::default()
                },
            )
            .expect("resolve loopback");
            barrier.wait();
            client.infer("burst", &[i as f32], Duration::from_secs(10))
        }));
    }
    let mut completed = 0u32;
    let mut rejected = 0u32;
    for handle in handles {
        match handle.join().expect("client thread panicked") {
            Ok(outcome) => {
                assert!(!outcome.expired);
                completed += 1;
            }
            Err(ClientError::Rejected { retry_after, .. }) => {
                assert!(
                    retry_after > Duration::ZERO,
                    "reject must carry a backoff hint"
                );
                rejected += 1;
            }
            Err(other) => panic!("unexpected failure under overload: {other}"),
        }
    }
    assert!(
        rejected > 0,
        "a 16-deep burst into hard_cap=4 must shed load"
    );
    assert!(completed > 0, "admitted requests must still complete");

    // Recovery: once the burst drains, a fresh request is admitted again.
    let mut client = EugeneClient::new(addr, ClientConfig::default()).expect("resolve loopback");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.infer("burst", &[7.0], Duration::from_secs(5)) {
            Ok(outcome) => {
                assert_eq!(outcome.predicted, Some(7));
                break;
            }
            Err(ClientError::Rejected { retry_after, .. }) if Instant::now() < deadline => {
                std::thread::sleep(retry_after);
            }
            Err(other) => panic!("gateway failed to recover after overload: {other}"),
        }
    }
    gateway.shutdown();
}

#[test]
fn client_retry_never_outlives_its_budget() {
    // high_water == hard_cap == 0 rejects every class unconditionally, so
    // the client's retry loop can only end via its own deadline logic.
    let gateway = start_gateway(
        vec![0.9],
        Duration::ZERO,
        fast_runtime(1),
        GatewayConfig {
            high_water: 0,
            hard_cap: 0,
            ..GatewayConfig::default()
        },
    );
    let addr = gateway.local_addr();
    let mut client = EugeneClient::new(
        addr,
        ClientConfig {
            max_attempts: 1_000, // budget, not attempts, must stop the loop
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
            ..ClientConfig::default()
        },
    )
    .expect("resolve loopback");

    let budget = Duration::from_millis(200);
    let started = Instant::now();
    let result = client.infer("any", &[1.0], budget);
    let elapsed = started.elapsed();
    match result {
        Err(ClientError::Rejected { .. }) | Err(ClientError::DeadlineExhausted) => {}
        other => panic!("expected rejection or deadline, got {other:?}"),
    }
    // The final backoff decision happens strictly before the deadline, so
    // the loop may only exceed the budget by one read-poll tick plus
    // scheduling noise (generous here: the whole workspace's test
    // binaries may be competing for cores). An unbounded loop would run
    // for many seconds — max_attempts alone permits ~1000 round trips.
    assert!(
        elapsed < budget + Duration::from_millis(800),
        "retry loop ran {elapsed:?} against a {budget:?} budget"
    );
    gateway.shutdown();
}

#[test]
fn graceful_shutdown_answers_every_in_flight_request() {
    // 3 stages x 30ms on 2 workers: six requests take ~270ms of engine
    // time, so shutdown at +60ms lands with most of them still in flight.
    let gateway = start_gateway(
        vec![0.2, 0.5, 0.9],
        Duration::from_millis(30),
        fast_runtime(2),
        open_config(),
    );
    let addr = gateway.local_addr();

    const CLIENTS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = EugeneClient::new(
                addr,
                ClientConfig {
                    max_attempts: 1,
                    ..ClientConfig::default()
                },
            )
            .expect("resolve loopback");
            barrier.wait();
            client.infer("drain", &[i as f32], Duration::from_secs(30))
        }));
    }
    barrier.wait();
    std::thread::sleep(Duration::from_millis(60));
    gateway.shutdown();

    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle
            .join()
            .expect("client thread panicked")
            .unwrap_or_else(|e| panic!("request {i} lost during shutdown: {e}"));
        assert_eq!(outcome.predicted, Some(i as u64));
        assert_eq!(outcome.stages_executed, 3);
    }
}

#[test]
fn progress_streaming_reports_each_stage_and_early_exit() {
    let gateway = start_gateway(
        vec![0.2, 0.95, 0.99],
        Duration::ZERO,
        RuntimeConfig {
            num_workers: 2,
            confidence_threshold: 0.9, // stage 2 hits 0.95 and exits early
            ..RuntimeConfig::default()
        },
        open_config(),
    );
    let addr = gateway.local_addr();
    let mut client = EugeneClient::new(
        addr,
        ClientConfig {
            want_progress: true,
            ..ClientConfig::default()
        },
    )
    .expect("resolve loopback");

    let outcome = client
        .infer("stream", &[42.0], Duration::from_secs(10))
        .expect("streamed inference");
    assert_eq!(outcome.stages_executed, 2, "early exit at the second stage");
    assert_eq!(outcome.predicted, Some(42));
    assert_eq!(outcome.stage_updates.len(), 2, "one update per stage");
    assert_eq!(outcome.stage_updates[0].confidence, 0.2);
    assert_eq!(outcome.stage_updates[1].confidence, 0.95);
    assert!(outcome.stage_updates.iter().all(|u| u.predicted == 42));
    gateway.shutdown();
}
