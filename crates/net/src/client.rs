//! Blocking gateway clients with deadline-aware retry.
//!
//! Two clients speak the [`crate::wire`] protocol:
//!
//! - [`EugeneClient`] is the simple serial client: one request in flight
//!   per connection, reconnecting transparently when the gateway drops it.
//! - [`MultiplexClient`] pipelines arbitrarily many requests over a
//!   *single* TCP connection, allocating a fresh `client_tag` per submit
//!   and routing `StageUpdate`/`Final`/`Reject` frames back to the
//!   matching [`PendingInference`] via a background reader thread. It is
//!   `&self` throughout, so many threads can share one client (and one
//!   socket).
//!
//! Both preserve the same deadline semantics per request: the deadline is
//! anchored when the inference starts, each submit carries only the
//! *remaining* budget, retries back off with capped exponential backoff
//! plus seeded jitter, and no sleep ever extends past the deadline. Tags
//! are allocated from a wrapping counter and never reused while a request
//! is pending; frames that arrive for a tag no longer pending (a prior
//! attempt that timed out, a `Reject` for an old tag after reconnect) are
//! counted as *stale* and explicitly discarded — in particular a stale
//! `Reject` never sets the backoff floor for the current attempt.

use crate::wire::{
    self, Frame, FrameBuffer, RejectReason, SubmitRequest, WireError, PROTOCOL_VERSION,
};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection and retry policy for [`EugeneClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read-poll granularity: how often the client re-checks its
    /// deadline while waiting for frames.
    pub read_poll: Duration,
    /// Maximum submit attempts per inference (first try included).
    pub max_attempts: u32,
    /// First retry backoff; doubles each attempt.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter (deterministic per client).
    pub seed: u64,
    /// Ask the gateway to stream per-stage progress frames.
    pub want_progress: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            read_poll: Duration::from_millis(10),
            max_attempts: 4,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            seed: 0,
            want_progress: false,
        }
    }
}

/// One per-stage progress report streamed by the gateway.
#[derive(Debug, Clone, PartialEq)]
pub struct StageUpdate {
    pub stage: u32,
    pub confidence: f32,
    pub predicted: u64,
}

/// Per-request addressing carried on a submit beyond class and budget.
///
/// Everything here is optional and defaults to the pre-registry wire
/// shape: no routing key, no model (the gateway's default model or its
/// data-aware dispatcher decides), no tenant (the request is admitted on
/// the anonymous class-utility path rather than a tenant quota).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitOptions {
    /// Sharding affinity: a sharded front tier pins all submits carrying
    /// the same key to the same shard. A plain gateway ignores it.
    pub routing_key: Option<u64>,
    /// Registry model to serve this request with; `None` lets the
    /// gateway's dispatcher (or default model) pick.
    pub model: Option<String>,
    /// Tenant identity for per-tenant admission quotas.
    pub tenant: Option<String>,
    /// Server-side budget to put on the wire, decoupled from how long
    /// this client waits. `None` (the default) sends the remaining wait
    /// budget, so client patience and server deadline coincide. `Some`
    /// pins the server's deadline while the `budget` passed to the infer
    /// call bounds only the wait — the slack lets an answer the server
    /// produces *at* its deadline (e.g. an anytime-degraded result) still
    /// reach the caller instead of being abandoned mid-flight.
    pub wire_budget: Option<Duration>,
}

impl SubmitOptions {
    fn keyed(routing_key: Option<u64>) -> Self {
        Self {
            routing_key,
            ..Self::default()
        }
    }
}

/// A completed inference as observed by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// Predicted label from the deepest completed stage, if any ran.
    pub predicted: Option<u64>,
    /// Confidence of that prediction.
    pub confidence: Option<f32>,
    /// Stages the runtime executed.
    pub stages_executed: u32,
    /// Whether the server's deadline daemon killed the request.
    pub expired: bool,
    /// Whether the runtime force-exited the request at an earlier stage
    /// under overload (anytime degradation); the answer is usable.
    pub degraded: bool,
    /// Server-side latency.
    pub server_latency: Duration,
    /// End-to-end latency including queueing, retries, and the network.
    pub round_trip: Duration,
    /// Progress frames received (empty unless `want_progress`).
    pub stage_updates: Vec<StageUpdate>,
    /// Submit attempts spent (1 = first try succeeded).
    pub attempts: u32,
}

/// Why an inference did not produce an outcome.
#[derive(Debug)]
pub enum ClientError {
    /// The budget ran out before a final answer arrived (possibly while
    /// backing off between attempts).
    DeadlineExhausted,
    /// The server refused the request and retries were exhausted (or the
    /// mandated backoff would outlive the budget). `reason` says whether
    /// admission control shed it or the serving shard was lost mid-flight.
    Rejected {
        retry_after: Duration,
        reason: RejectReason,
    },
    /// Connection/protocol failure that retries could not absorb.
    Wire(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::DeadlineExhausted => write!(f, "deadline budget exhausted"),
            ClientError::Rejected {
                retry_after,
                reason,
            } => {
                write!(
                    f,
                    "rejected by gateway ({reason:?}, retry after {retry_after:?})"
                )
            }
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

struct Connection {
    stream: TcpStream,
    buffer: FrameBuffer,
}

/// Blocking client for a [`crate::server::Gateway`].
pub struct EugeneClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Connection>,
    rng: rand::rngs::StdRng,
    next_tag: u64,
    stale_frames: u64,
}

impl EugeneClient {
    /// Resolves `addr` and prepares a client; the TCP connection is
    /// established lazily on first use and re-established transparently
    /// after failures.
    pub fn new(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        Ok(Self {
            addr,
            config,
            conn: None,
            rng,
            next_tag: 0,
            stale_frames: 0,
        })
    }

    /// Allocates the next client tag. The space wraps at `u64::MAX`; tags
    /// are unique per connection as long as fewer than 2^64 requests are
    /// ever simultaneously outstanding, which holds trivially here (one).
    fn alloc_tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        tag
    }

    /// Frames received for a tag that is no longer pending (leftovers of
    /// a timed-out or superseded attempt). These are discarded, never
    /// acted on.
    pub fn stale_frames(&self) -> u64 {
        self.stale_frames
    }

    /// Runs one inference with an end-to-end deadline `budget`.
    ///
    /// The deadline is anchored now; every retry re-computes the
    /// remaining budget, each submit tells the server only what is left,
    /// and no backoff sleep ever extends past the deadline.
    pub fn infer(
        &mut self,
        class: &str,
        payload: &[f32],
        budget: Duration,
    ) -> Result<InferenceOutcome, ClientError> {
        self.infer_keyed(class, payload, budget, None)
    }

    /// [`EugeneClient::infer`] with an explicit sharding routing key: a
    /// sharded front tier pins all submits carrying the same key to the
    /// same shard. A plain gateway ignores the key.
    pub fn infer_keyed(
        &mut self,
        class: &str,
        payload: &[f32],
        budget: Duration,
        routing_key: Option<u64>,
    ) -> Result<InferenceOutcome, ClientError> {
        self.infer_with(class, payload, budget, &SubmitOptions::keyed(routing_key))
    }

    /// [`EugeneClient::infer`] with full per-request addressing: routing
    /// key, registry model, and tenant identity (see [`SubmitOptions`]).
    pub fn infer_with(
        &mut self,
        class: &str,
        payload: &[f32],
        budget: Duration,
        options: &SubmitOptions,
    ) -> Result<InferenceOutcome, ClientError> {
        let started = Instant::now();
        let deadline = started + budget;
        let mut attempts = 0u32;
        let mut last_error = ClientError::DeadlineExhausted;
        while attempts < self.config.max_attempts {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::DeadlineExhausted);
            }
            attempts += 1;
            match self.try_once(class, payload, remaining, deadline, options) {
                Ok(mut outcome) => {
                    outcome.round_trip = started.elapsed();
                    outcome.attempts = attempts;
                    return Ok(outcome);
                }
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Retry { floor, error }) => {
                    last_error = error;
                    let backoff = self.backoff(attempts).max(floor);
                    // Never retry past the remaining budget: if the wait
                    // alone would cross the deadline, report now.
                    if Instant::now() + backoff >= deadline || attempts >= self.config.max_attempts
                    {
                        return Err(last_error);
                    }
                    std::thread::sleep(backoff);
                }
            }
        }
        Err(last_error)
    }

    /// Round-trips a Ping through the gateway; returns the RTT.
    pub fn ping(&mut self, timeout: Duration) -> Result<Duration, ClientError> {
        let deadline = Instant::now() + timeout;
        let conn = self.connection(deadline)?;
        let nonce = 0x50_49_4E_47 ^ conn.stream.local_addr().map(|a| a.port()).unwrap_or(0) as u64;
        let started = Instant::now();
        if let Err(e) = wire::write_frame(&mut conn.stream, &Frame::Ping { nonce }) {
            self.conn = None;
            return Err(e.into());
        }
        loop {
            if Instant::now() >= deadline {
                return Err(ClientError::DeadlineExhausted);
            }
            let conn = self.conn.as_mut().expect("connection present");
            match conn.buffer.poll(&mut conn.stream) {
                Ok(Some(Frame::Pong { nonce: echoed })) if echoed == nonce => {
                    return Ok(started.elapsed());
                }
                Ok(_) => continue,
                Err(e) => {
                    self.conn = None;
                    return Err(e.into());
                }
            }
        }
    }

    /// Whether a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.backoff_cap);
        // Jitter in [0.5, 1.5) de-synchronizes retry storms.
        let jitter = self.rng.gen_range(0.5f64..1.5);
        exp.mul_f64(jitter)
    }

    fn connection(&mut self, deadline: Instant) -> Result<&mut Connection, ClientError> {
        if self.conn.is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::DeadlineExhausted);
            }
            let timeout = self.config.connect_timeout.min(remaining);
            let stream = TcpStream::connect_timeout(&self.addr, timeout)?;
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(self.config.read_poll))
                .map_err(WireError::Io)?;
            let mut conn = Connection {
                stream,
                buffer: FrameBuffer::new(),
            };
            wire::write_frame(
                &mut conn.stream,
                &Frame::Hello {
                    max_version: PROTOCOL_VERSION,
                },
            )?;
            loop {
                if Instant::now() >= deadline {
                    return Err(ClientError::DeadlineExhausted);
                }
                match conn.buffer.poll(&mut conn.stream)? {
                    Some(Frame::HelloAck { version })
                        if (1..=PROTOCOL_VERSION).contains(&version) =>
                    {
                        break;
                    }
                    Some(_) => {
                        return Err(ClientError::Wire(WireError::Malformed("expected HelloAck")))
                    }
                    None => continue,
                }
            }
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("connection present"))
    }

    fn try_once(
        &mut self,
        class: &str,
        payload: &[f32],
        remaining: Duration,
        deadline: Instant,
        options: &SubmitOptions,
    ) -> Result<InferenceOutcome, AttemptError> {
        let tag = self.alloc_tag();
        let submit = Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: class.to_owned(),
            budget_ms: options.wire_budget.unwrap_or(remaining).as_millis().max(1) as u64,
            want_progress: self.config.want_progress,
            payload: payload.to_vec(),
            routing_key: options.routing_key,
            model: options.model.clone(),
            tenant: options.tenant.clone(),
            // Stamped by the sharded router when it proxies upstream;
            // a direct client never sets it.
            epoch: None,
        });
        let conn = match self.connection(deadline) {
            Ok(conn) => conn,
            Err(ClientError::DeadlineExhausted) => {
                return Err(AttemptError::Fatal(ClientError::DeadlineExhausted))
            }
            // Connect failures are transient: retry with backoff.
            Err(e) => return Err(AttemptError::retry(e)),
        };
        if let Err(e) = wire::write_frame(&mut conn.stream, &submit) {
            self.conn = None;
            return Err(AttemptError::retry(ClientError::Wire(e)));
        }
        let mut stage_updates = Vec::new();
        loop {
            if Instant::now() >= deadline {
                // The submit may still complete server-side, but our
                // budget is gone; drop the connection so a stale Final
                // cannot confuse the next request.
                self.conn = None;
                return Err(AttemptError::Fatal(ClientError::DeadlineExhausted));
            }
            let conn = self.conn.as_mut().expect("connection present");
            let frame = match conn.buffer.poll(&mut conn.stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => continue,
                Err(e) => {
                    self.conn = None;
                    return Err(AttemptError::retry(ClientError::Wire(e)));
                }
            };
            match frame {
                Frame::StageUpdate {
                    client_tag,
                    stage,
                    confidence,
                    predicted,
                } if client_tag == tag => {
                    // Stage-restart dedup: a sharded front tier replaying
                    // this request onto a standby restarts its stage
                    // stream; drop the dead attempt's updates.
                    if stage_updates
                        .last()
                        .is_some_and(|last: &StageUpdate| stage <= last.stage)
                    {
                        stage_updates.clear();
                    }
                    stage_updates.push(StageUpdate {
                        stage,
                        confidence,
                        predicted,
                    });
                }
                Frame::Final {
                    client_tag,
                    response,
                } if client_tag == tag => {
                    return Ok(InferenceOutcome {
                        predicted: response.predicted,
                        confidence: response.confidence,
                        stages_executed: response.stages_executed,
                        expired: response.expired,
                        degraded: response.degraded,
                        server_latency: Duration::from_micros(response.latency_us),
                        round_trip: Duration::ZERO, // filled by infer()
                        stage_updates,
                        attempts: 0, // filled by infer()
                    });
                }
                Frame::Reject {
                    client_tag,
                    retry_after_ms,
                    reason,
                } if client_tag == tag => {
                    let retry_after = Duration::from_millis(retry_after_ms);
                    return Err(AttemptError::Retry {
                        floor: retry_after,
                        error: ClientError::Rejected {
                            retry_after,
                            reason,
                        },
                    });
                }
                // Stale data frames: leftovers addressed to a tag that is
                // no longer pending (a timed-out prior attempt, or an old
                // tag echoed after reconnect/wraparound). Count and drop
                // them — crucially a stale `Reject` must NOT feed its
                // `retry_after_ms` into this attempt's backoff floor.
                Frame::StageUpdate { .. } | Frame::Final { .. } | Frame::Reject { .. } => {
                    self.stale_frames += 1;
                }
                // Control frames (pongs from concurrent pings, handshake
                // echoes) are simply not ours to handle here.
                _ => {}
            }
        }
    }
}

/// Demuxed event delivered to one pending request's channel.
enum MuxEvent {
    Stage(StageUpdate),
    Final(wire::WireResponse),
    Reject {
        retry_after_ms: u64,
        reason: RejectReason,
    },
}

/// State shared between a mux connection's users and its reader thread.
///
/// The reader holds only this (never the [`MuxConn`] itself), so dropping
/// the last `MuxConn` reference can join the reader without a cycle.
struct MuxShared {
    /// In-flight tags → the channel their frames are routed to. `Final`
    /// and `Reject` remove the entry; `StageUpdate` does not.
    pending: Mutex<HashMap<u64, Sender<MuxEvent>>>,
    /// Outstanding ping nonces → wakeup channels.
    pings: Mutex<HashMap<u64, Sender<()>>>,
    /// Set by the reader on any wire failure: the connection is unusable
    /// and the next submit re-dials.
    dead: AtomicBool,
    /// Set on deliberate close so the reader exits without flagging an
    /// error.
    closed: AtomicBool,
    /// Client-lifetime stale-frame counter (shared across reconnects).
    stale: Arc<AtomicU64>,
}

/// One live multiplexed connection: a locked write half (frame-atomic)
/// plus the reader thread demuxing the read half.
struct MuxConn {
    writer: Mutex<TcpStream>,
    shared: Arc<MuxShared>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for MuxConn {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
        {
            let mut writer = self.writer.lock();
            // Courtesy close; the socket shutdown right after is what
            // actually unblocks the reader.
            let _ = wire::write_frame(&mut *writer, &Frame::Shutdown);
            writer.shutdown(SocketShutdown::Both).ok();
        }
        if let Some(handle) = self.reader.lock().take() {
            let _ = handle.join();
        }
    }
}

fn mux_reader_loop(mut stream: TcpStream, mut buffer: FrameBuffer, shared: Arc<MuxShared>) {
    loop {
        if shared.closed.load(Ordering::Relaxed) {
            return;
        }
        let frame = match buffer.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            Err(_) => {
                shared.dead.store(true, Ordering::Relaxed);
                // Dropping the senders disconnects every waiter, which
                // observes `Disconnected` and classifies the attempt as a
                // retryable connection loss.
                shared.pending.lock().clear();
                shared.pings.lock().clear();
                return;
            }
        };
        match frame {
            Frame::StageUpdate {
                client_tag,
                stage,
                confidence,
                predicted,
            } => {
                let routed = shared.pending.lock().get(&client_tag).map(|tx| {
                    tx.send(MuxEvent::Stage(StageUpdate {
                        stage,
                        confidence,
                        predicted,
                    }))
                });
                if routed.is_none() {
                    shared.stale.fetch_add(1, Ordering::Relaxed);
                }
            }
            Frame::Final {
                client_tag,
                response,
            } => match shared.pending.lock().remove(&client_tag) {
                Some(tx) => {
                    let _ = tx.send(MuxEvent::Final(response));
                }
                None => {
                    shared.stale.fetch_add(1, Ordering::Relaxed);
                }
            },
            Frame::Reject {
                client_tag,
                retry_after_ms,
                reason,
            } => match shared.pending.lock().remove(&client_tag) {
                Some(tx) => {
                    let _ = tx.send(MuxEvent::Reject {
                        retry_after_ms,
                        reason,
                    });
                }
                // A stale Reject (old tag, post-reconnect echo) is counted
                // and dropped — its retry_after must not slow anyone down.
                None => {
                    shared.stale.fetch_add(1, Ordering::Relaxed);
                }
            },
            Frame::Pong { nonce } => {
                if let Some(tx) = shared.pings.lock().remove(&nonce) {
                    let _ = tx.send(());
                }
            }
            // Servers have no business sending client->server frames.
            _ => {}
        }
    }
}

/// A submitted inference whose `Final` has not been awaited yet.
///
/// Obtained from [`MultiplexClient::submit`]; any number may be
/// outstanding on the same connection at once. [`PendingInference::wait`]
/// blocks until the final answer, a rejection, the request's deadline, or
/// connection loss — whichever comes first. Dropping a pending inference
/// abandons it: a late `Final` is then counted as stale, not delivered.
pub struct PendingInference {
    conn: Arc<MuxConn>,
    tag: u64,
    rx: Receiver<MuxEvent>,
    deadline: Instant,
    submitted: Instant,
    stage_updates: Vec<StageUpdate>,
    done: bool,
}

impl PendingInference {
    /// The wire tag this request was submitted under.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Blocks until this request resolves (single attempt, no retry).
    ///
    /// For rejected requests use [`MultiplexClient::infer`] if you want
    /// the retry/backoff loop.
    pub fn wait(mut self) -> Result<InferenceOutcome, ClientError> {
        match self.wait_attempt() {
            Ok(mut outcome) => {
                outcome.attempts = 1;
                Ok(outcome)
            }
            Err(AttemptError::Fatal(e)) | Err(AttemptError::Retry { error: e, .. }) => Err(e),
        }
    }

    fn wait_attempt(&mut self) -> Result<InferenceOutcome, AttemptError> {
        loop {
            let remaining = self.deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.abandon();
                return Err(AttemptError::Fatal(ClientError::DeadlineExhausted));
            }
            match self.rx.recv_timeout(remaining) {
                Ok(MuxEvent::Stage(update)) => {
                    // A non-advancing stage number means the request was
                    // transparently replayed on another shard (failover)
                    // and its stage stream restarted: keep only the
                    // stream of the attempt that will produce the Final.
                    if let Some(last) = self.stage_updates.last() {
                        if update.stage <= last.stage {
                            self.stage_updates.clear();
                        }
                    }
                    self.stage_updates.push(update);
                }
                Ok(MuxEvent::Final(response)) => {
                    self.done = true;
                    return Ok(InferenceOutcome {
                        predicted: response.predicted,
                        confidence: response.confidence,
                        stages_executed: response.stages_executed,
                        expired: response.expired,
                        degraded: response.degraded,
                        server_latency: Duration::from_micros(response.latency_us),
                        round_trip: self.submitted.elapsed(),
                        stage_updates: std::mem::take(&mut self.stage_updates),
                        attempts: 0, // filled by the caller
                    });
                }
                Ok(MuxEvent::Reject {
                    retry_after_ms,
                    reason,
                }) => {
                    self.done = true;
                    let retry_after = Duration::from_millis(retry_after_ms);
                    return Err(AttemptError::Retry {
                        floor: retry_after,
                        error: ClientError::Rejected {
                            retry_after,
                            reason,
                        },
                    });
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    // The reader died and dropped our sender: connection
                    // lost mid-flight; retryable on a fresh connection.
                    self.done = true;
                    return Err(AttemptError::retry(ClientError::Wire(WireError::Truncated)));
                }
            }
        }
    }

    /// Deregisters the tag so late frames count as stale instead of
    /// leaking a dead channel in the routing table. The connection itself
    /// stays healthy — one timed-out request must not stall the pipeline.
    fn abandon(&mut self) {
        self.conn.shared.pending.lock().remove(&self.tag);
        self.done = true;
    }
}

impl Drop for PendingInference {
    fn drop(&mut self) {
        if !self.done {
            self.abandon();
        }
    }
}

/// Pipelining gateway client: many concurrent requests over one TCP
/// connection, demuxed by `client_tag`.
///
/// Shareable across threads (`&self` API); submits interleave freely and
/// a background reader routes every response to the matching
/// [`PendingInference`]. Reconnects lazily after connection loss; tags
/// come from a wrapping client-lifetime counter, so tags are never reused
/// across a reconnect and stale frames from an old socket can never be
/// misdelivered.
///
/// ```no_run
/// use eugene_net::client::{ClientConfig, MultiplexClient};
/// use std::time::Duration;
///
/// let client = MultiplexClient::new("127.0.0.1:7878", ClientConfig::default())?;
/// // Pipeline a burst of submits, then harvest the answers.
/// let pending: Vec<_> = (0..64)
///     .map(|i| client.submit("interactive", &[i as f32], Duration::from_millis(250), false))
///     .collect::<Result<_, _>>()?;
/// for p in pending {
///     let outcome = p.wait()?;
///     println!("predicted {:?}", outcome.predicted);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MultiplexClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Mutex<Option<Arc<MuxConn>>>,
    next_tag: AtomicU64,
    next_nonce: AtomicU64,
    stale: Arc<AtomicU64>,
    rng: Mutex<rand::rngs::StdRng>,
}

impl MultiplexClient {
    /// Resolves `addr` and prepares a client; the connection is dialed
    /// lazily on first submit and re-dialed after failures.
    pub fn new(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        Ok(Self {
            addr,
            config,
            conn: Mutex::new(None),
            next_tag: AtomicU64::new(0),
            next_nonce: AtomicU64::new(0),
            stale: Arc::new(AtomicU64::new(0)),
            rng: Mutex::new(rng),
        })
    }

    /// Dials the gateway now instead of on first submit.
    pub fn connect(&self, timeout: Duration) -> Result<(), ClientError> {
        self.connection(Instant::now() + timeout).map(|_| ())
    }

    /// Whether a live (non-dead) connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.conn
            .lock()
            .as_ref()
            .is_some_and(|c| !c.shared.dead.load(Ordering::Relaxed))
    }

    /// Frames received for tags no longer pending, accumulated over the
    /// client's lifetime (across reconnects). Stale frames are counted
    /// and dropped, never delivered.
    pub fn stale_frames(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Allocates the next client tag from the wrapping counter. Tags stay
    /// unique as long as fewer than 2^64 requests are simultaneously in
    /// flight, and are never reused across reconnects (the counter is
    /// client-lifetime, not per-connection).
    fn alloc_tag(&self) -> u64 {
        // fetch_add wraps on overflow, which is exactly the semantics we
        // want at the u64::MAX boundary.
        self.next_tag.fetch_add(1, Ordering::Relaxed)
    }

    /// Submits one inference without waiting; the returned handle resolves
    /// it. Any number of submits may be pipelined before the first wait.
    pub fn submit(
        &self,
        class: &str,
        payload: &[f32],
        budget: Duration,
        want_progress: bool,
    ) -> Result<PendingInference, ClientError> {
        self.submit_with_deadline(
            class,
            payload,
            Instant::now() + budget,
            want_progress,
            &SubmitOptions::default(),
        )
    }

    /// [`MultiplexClient::submit`] with an explicit sharding routing key:
    /// a sharded front tier pins all submits carrying the same key to the
    /// same shard. A plain gateway ignores the key.
    pub fn submit_keyed(
        &self,
        class: &str,
        payload: &[f32],
        budget: Duration,
        want_progress: bool,
        routing_key: Option<u64>,
    ) -> Result<PendingInference, ClientError> {
        self.submit_with_deadline(
            class,
            payload,
            Instant::now() + budget,
            want_progress,
            &SubmitOptions::keyed(routing_key),
        )
    }

    /// [`MultiplexClient::submit`] with full per-request addressing:
    /// routing key, registry model, and tenant (see [`SubmitOptions`]).
    pub fn submit_with(
        &self,
        class: &str,
        payload: &[f32],
        budget: Duration,
        want_progress: bool,
        options: &SubmitOptions,
    ) -> Result<PendingInference, ClientError> {
        self.submit_with_deadline(
            class,
            payload,
            Instant::now() + budget,
            want_progress,
            options,
        )
    }

    fn submit_with_deadline(
        &self,
        class: &str,
        payload: &[f32],
        deadline: Instant,
        want_progress: bool,
        options: &SubmitOptions,
    ) -> Result<PendingInference, ClientError> {
        let conn = self.connection(deadline)?;
        let tag = self.alloc_tag();
        let (tx, rx) = unbounded();
        conn.shared.pending.lock().insert(tag, tx);
        let remaining = deadline.saturating_duration_since(Instant::now());
        let frame = Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: class.to_owned(),
            budget_ms: options.wire_budget.unwrap_or(remaining).as_millis().max(1) as u64,
            want_progress,
            payload: payload.to_vec(),
            routing_key: options.routing_key,
            model: options.model.clone(),
            tenant: options.tenant.clone(),
            epoch: None,
        });
        if let Err(e) = wire::write_frame(&mut *conn.writer.lock(), &frame) {
            conn.shared.pending.lock().remove(&tag);
            conn.shared.dead.store(true, Ordering::Relaxed);
            return Err(e.into());
        }
        Ok(PendingInference {
            conn,
            tag,
            rx,
            deadline,
            submitted: Instant::now(),
            stage_updates: Vec::new(),
            done: false,
        })
    }

    /// Runs one inference with an end-to-end deadline `budget`, retrying
    /// rejections and connection loss with the same capped, jittered,
    /// deadline-bounded backoff as [`EugeneClient::infer`] — but over the
    /// shared pipelined connection, so concurrent callers never serialize
    /// behind each other.
    pub fn infer(
        &self,
        class: &str,
        payload: &[f32],
        budget: Duration,
    ) -> Result<InferenceOutcome, ClientError> {
        self.infer_keyed(class, payload, budget, None)
    }

    /// [`MultiplexClient::infer`] with an explicit sharding routing key.
    pub fn infer_keyed(
        &self,
        class: &str,
        payload: &[f32],
        budget: Duration,
        routing_key: Option<u64>,
    ) -> Result<InferenceOutcome, ClientError> {
        self.infer_with(class, payload, budget, &SubmitOptions::keyed(routing_key))
    }

    /// [`MultiplexClient::infer`] with full per-request addressing:
    /// routing key, registry model, and tenant (see [`SubmitOptions`]).
    pub fn infer_with(
        &self,
        class: &str,
        payload: &[f32],
        budget: Duration,
        options: &SubmitOptions,
    ) -> Result<InferenceOutcome, ClientError> {
        let started = Instant::now();
        let deadline = started + budget;
        let mut attempts = 0u32;
        let mut last_error = ClientError::DeadlineExhausted;
        while attempts < self.config.max_attempts {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::DeadlineExhausted);
            }
            attempts += 1;
            match self.attempt(class, payload, deadline, options) {
                Ok(mut outcome) => {
                    outcome.round_trip = started.elapsed();
                    outcome.attempts = attempts;
                    return Ok(outcome);
                }
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Retry { floor, error }) => {
                    last_error = error;
                    let backoff = self.backoff(attempts).max(floor);
                    if Instant::now() + backoff >= deadline || attempts >= self.config.max_attempts
                    {
                        return Err(last_error);
                    }
                    std::thread::sleep(backoff);
                }
            }
        }
        Err(last_error)
    }

    fn attempt(
        &self,
        class: &str,
        payload: &[f32],
        deadline: Instant,
        options: &SubmitOptions,
    ) -> Result<InferenceOutcome, AttemptError> {
        let mut pending = match self.submit_with_deadline(
            class,
            payload,
            deadline,
            self.config.want_progress,
            options,
        ) {
            Ok(pending) => pending,
            Err(ClientError::DeadlineExhausted) => {
                return Err(AttemptError::Fatal(ClientError::DeadlineExhausted))
            }
            // Dial/write failures are transient: retry with backoff.
            Err(e) => return Err(AttemptError::retry(e)),
        };
        pending.wait_attempt()
    }

    /// Round-trips a Ping over the shared connection; returns the RTT.
    pub fn ping(&self, timeout: Duration) -> Result<Duration, ClientError> {
        let deadline = Instant::now() + timeout;
        let conn = self.connection(deadline)?;
        let nonce = self.next_nonce.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        conn.shared.pings.lock().insert(nonce, tx);
        let started = Instant::now();
        if let Err(e) = wire::write_frame(&mut *conn.writer.lock(), &Frame::Ping { nonce }) {
            conn.shared.pings.lock().remove(&nonce);
            conn.shared.dead.store(true, Ordering::Relaxed);
            return Err(e.into());
        }
        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(()) => Ok(started.elapsed()),
            Err(RecvTimeoutError::Timeout) => {
                conn.shared.pings.lock().remove(&nonce);
                Err(ClientError::DeadlineExhausted)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ClientError::Wire(WireError::Truncated)),
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.backoff_cap);
        let jitter = self.rng.lock().gen_range(0.5f64..1.5);
        exp.mul_f64(jitter)
    }

    /// Returns the live connection, dialing a fresh one (under the lock,
    /// so concurrent submitters share a single dial) if none exists or
    /// the previous one died.
    fn connection(&self, deadline: Instant) -> Result<Arc<MuxConn>, ClientError> {
        let mut guard = self.conn.lock();
        if let Some(conn) = guard.as_ref() {
            if !conn.shared.dead.load(Ordering::Relaxed) {
                return Ok(Arc::clone(conn));
            }
        }
        let conn = Arc::new(self.dial(deadline)?);
        *guard = Some(Arc::clone(&conn));
        Ok(conn)
    }

    fn dial(&self, deadline: Instant) -> Result<MuxConn, ClientError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ClientError::DeadlineExhausted);
        }
        let timeout = self.config.connect_timeout.min(remaining);
        let mut stream = TcpStream::connect_timeout(&self.addr, timeout)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.config.read_poll))
            .map_err(WireError::Io)?;
        wire::write_frame(
            &mut stream,
            &Frame::Hello {
                max_version: PROTOCOL_VERSION,
            },
        )?;
        // Handshake completes on this thread; the buffer (with any bytes
        // the server pipelined behind the ack) is handed to the reader.
        let mut buffer = FrameBuffer::new();
        loop {
            if Instant::now() >= deadline {
                return Err(ClientError::DeadlineExhausted);
            }
            match buffer.poll(&mut stream)? {
                Some(Frame::HelloAck { version }) if (1..=PROTOCOL_VERSION).contains(&version) => {
                    break;
                }
                Some(_) => {
                    return Err(ClientError::Wire(WireError::Malformed("expected HelloAck")))
                }
                None => continue,
            }
        }
        let shared = Arc::new(MuxShared {
            pending: Mutex::new(HashMap::new()),
            pings: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            stale: Arc::clone(&self.stale),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            let stream = stream.try_clone().map_err(WireError::Io)?;
            std::thread::Builder::new()
                .name("eugene-mux-reader".to_owned())
                .spawn(move || mux_reader_loop(stream, buffer, shared))
                .expect("spawn mux reader thread")
        };
        Ok(MuxConn {
            writer: Mutex::new(stream),
            shared,
            reader: Mutex::new(Some(reader)),
        })
    }
}

enum AttemptError {
    /// Retry after backing off at least `floor`.
    Retry { floor: Duration, error: ClientError },
    /// Not retryable; surface to the caller.
    Fatal(ClientError),
}

impl AttemptError {
    fn retry(error: ClientError) -> Self {
        AttemptError::Retry {
            floor: Duration::ZERO,
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            seed: 7,
            ..ClientConfig::default()
        };
        let mut a = EugeneClient::new("127.0.0.1:1", config.clone()).unwrap();
        let mut b = EugeneClient::new("127.0.0.1:1", config).unwrap();
        for attempt in 1..10 {
            let x = a.backoff(attempt);
            let y = b.backoff(attempt);
            assert_eq!(x, y, "same seed, same jitter");
            // Cap 80ms, jitter < 1.5: never above 120ms.
            assert!(x <= Duration::from_millis(120), "attempt {attempt}: {x:?}");
            assert!(x >= Duration::from_millis(5), "attempt {attempt}: {x:?}");
        }
    }

    #[test]
    fn tags_wrap_at_u64_max_without_panic_or_reuse() {
        // Serial client: wrapping_add, not +=, at the boundary.
        let mut serial = EugeneClient::new("127.0.0.1:1", ClientConfig::default()).unwrap();
        serial.next_tag = u64::MAX;
        assert_eq!(serial.alloc_tag(), u64::MAX);
        assert_eq!(serial.alloc_tag(), 0);
        assert_eq!(serial.alloc_tag(), 1);

        // Mux client: fetch_add wraps atomically at the boundary, and the
        // counter is client-lifetime so a reconnect never resets it into
        // the range of tags still pending on the old socket.
        let mux = MultiplexClient::new("127.0.0.1:1", ClientConfig::default()).unwrap();
        mux.next_tag.store(u64::MAX - 1, Ordering::Relaxed);
        assert_eq!(mux.alloc_tag(), u64::MAX - 1);
        assert_eq!(mux.alloc_tag(), u64::MAX);
        assert_eq!(mux.alloc_tag(), 0);
    }

    #[test]
    fn infer_against_dead_address_respects_budget() {
        // Nothing listens on this port; every attempt fails fast and the
        // client must give up within (roughly) the budget.
        let mut client = EugeneClient::new(
            "127.0.0.1:1",
            ClientConfig {
                connect_timeout: Duration::from_millis(50),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let started = Instant::now();
        let result = client.infer("c", &[1.0], Duration::from_millis(200));
        assert!(result.is_err());
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "retry loop must stay bounded by the budget"
        );
    }
}
