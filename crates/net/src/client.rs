//! Blocking gateway client with deadline-aware retry.
//!
//! [`EugeneClient`] speaks the [`crate::wire`] protocol over one TCP
//! connection, reconnecting transparently when the gateway drops it. Every
//! inference carries an end-to-end budget: the client anchors the deadline
//! at the moment [`EugeneClient::infer`] is called, sends the *remaining*
//! budget with each attempt, and backs off between attempts with capped
//! exponential backoff plus seeded jitter — but never sleeps past the
//! remaining budget, so a caller's deadline bounds the whole retry loop.

use crate::wire::{self, Frame, FrameBuffer, SubmitRequest, WireError, PROTOCOL_VERSION};
use rand::{Rng, SeedableRng};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Connection and retry policy for [`EugeneClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read-poll granularity: how often the client re-checks its
    /// deadline while waiting for frames.
    pub read_poll: Duration,
    /// Maximum submit attempts per inference (first try included).
    pub max_attempts: u32,
    /// First retry backoff; doubles each attempt.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter (deterministic per client).
    pub seed: u64,
    /// Ask the gateway to stream per-stage progress frames.
    pub want_progress: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            read_poll: Duration::from_millis(10),
            max_attempts: 4,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            seed: 0,
            want_progress: false,
        }
    }
}

/// One per-stage progress report streamed by the gateway.
#[derive(Debug, Clone, PartialEq)]
pub struct StageUpdate {
    pub stage: u32,
    pub confidence: f32,
    pub predicted: u64,
}

/// A completed inference as observed by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// Predicted label from the deepest completed stage, if any ran.
    pub predicted: Option<u64>,
    /// Confidence of that prediction.
    pub confidence: Option<f32>,
    /// Stages the runtime executed.
    pub stages_executed: u32,
    /// Whether the server's deadline daemon killed the request.
    pub expired: bool,
    /// Server-side latency.
    pub server_latency: Duration,
    /// End-to-end latency including queueing, retries, and the network.
    pub round_trip: Duration,
    /// Progress frames received (empty unless `want_progress`).
    pub stage_updates: Vec<StageUpdate>,
    /// Submit attempts spent (1 = first try succeeded).
    pub attempts: u32,
}

/// Why an inference did not produce an outcome.
#[derive(Debug)]
pub enum ClientError {
    /// The budget ran out before a final answer arrived (possibly while
    /// backing off between attempts).
    DeadlineExhausted,
    /// The gateway shed the request and retries were exhausted (or the
    /// mandated backoff would outlive the budget).
    Rejected { retry_after: Duration },
    /// Connection/protocol failure that retries could not absorb.
    Wire(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::DeadlineExhausted => write!(f, "deadline budget exhausted"),
            ClientError::Rejected { retry_after } => {
                write!(f, "rejected by gateway (retry after {retry_after:?})")
            }
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

struct Connection {
    stream: TcpStream,
    buffer: FrameBuffer,
}

/// Blocking client for a [`crate::server::Gateway`].
pub struct EugeneClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Connection>,
    rng: rand::rngs::StdRng,
    next_tag: u64,
}

impl EugeneClient {
    /// Resolves `addr` and prepares a client; the TCP connection is
    /// established lazily on first use and re-established transparently
    /// after failures.
    pub fn new(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        Ok(Self {
            addr,
            config,
            conn: None,
            rng,
            next_tag: 0,
        })
    }

    /// Runs one inference with an end-to-end deadline `budget`.
    ///
    /// The deadline is anchored now; every retry re-computes the
    /// remaining budget, each submit tells the server only what is left,
    /// and no backoff sleep ever extends past the deadline.
    pub fn infer(
        &mut self,
        class: &str,
        payload: &[f32],
        budget: Duration,
    ) -> Result<InferenceOutcome, ClientError> {
        let started = Instant::now();
        let deadline = started + budget;
        let mut attempts = 0u32;
        let mut last_error = ClientError::DeadlineExhausted;
        while attempts < self.config.max_attempts {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::DeadlineExhausted);
            }
            attempts += 1;
            match self.try_once(class, payload, remaining, deadline) {
                Ok(mut outcome) => {
                    outcome.round_trip = started.elapsed();
                    outcome.attempts = attempts;
                    return Ok(outcome);
                }
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Retry { floor, error }) => {
                    last_error = error;
                    let backoff = self.backoff(attempts).max(floor);
                    // Never retry past the remaining budget: if the wait
                    // alone would cross the deadline, report now.
                    if Instant::now() + backoff >= deadline || attempts >= self.config.max_attempts
                    {
                        return Err(last_error);
                    }
                    std::thread::sleep(backoff);
                }
            }
        }
        Err(last_error)
    }

    /// Round-trips a Ping through the gateway; returns the RTT.
    pub fn ping(&mut self, timeout: Duration) -> Result<Duration, ClientError> {
        let deadline = Instant::now() + timeout;
        let conn = self.connection(deadline)?;
        let nonce = 0x50_49_4E_47 ^ conn.stream.local_addr().map(|a| a.port()).unwrap_or(0) as u64;
        let started = Instant::now();
        if let Err(e) = wire::write_frame(&mut conn.stream, &Frame::Ping { nonce }) {
            self.conn = None;
            return Err(e.into());
        }
        loop {
            if Instant::now() >= deadline {
                return Err(ClientError::DeadlineExhausted);
            }
            let conn = self.conn.as_mut().expect("connection present");
            match conn.buffer.poll(&mut conn.stream) {
                Ok(Some(Frame::Pong { nonce: echoed })) if echoed == nonce => {
                    return Ok(started.elapsed());
                }
                Ok(_) => continue,
                Err(e) => {
                    self.conn = None;
                    return Err(e.into());
                }
            }
        }
    }

    /// Whether a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.backoff_cap);
        // Jitter in [0.5, 1.5) de-synchronizes retry storms.
        let jitter = self.rng.gen_range(0.5f64..1.5);
        exp.mul_f64(jitter)
    }

    fn connection(&mut self, deadline: Instant) -> Result<&mut Connection, ClientError> {
        if self.conn.is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::DeadlineExhausted);
            }
            let timeout = self.config.connect_timeout.min(remaining);
            let stream = TcpStream::connect_timeout(&self.addr, timeout)?;
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(self.config.read_poll))
                .map_err(WireError::Io)?;
            let mut conn = Connection {
                stream,
                buffer: FrameBuffer::new(),
            };
            wire::write_frame(
                &mut conn.stream,
                &Frame::Hello {
                    max_version: PROTOCOL_VERSION,
                },
            )?;
            loop {
                if Instant::now() >= deadline {
                    return Err(ClientError::DeadlineExhausted);
                }
                match conn.buffer.poll(&mut conn.stream)? {
                    Some(Frame::HelloAck { version })
                        if (1..=PROTOCOL_VERSION).contains(&version) =>
                    {
                        break;
                    }
                    Some(_) => {
                        return Err(ClientError::Wire(WireError::Malformed("expected HelloAck")))
                    }
                    None => continue,
                }
            }
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("connection present"))
    }

    fn try_once(
        &mut self,
        class: &str,
        payload: &[f32],
        remaining: Duration,
        deadline: Instant,
    ) -> Result<InferenceOutcome, AttemptError> {
        let tag = self.next_tag;
        self.next_tag += 1;
        let submit = Frame::Submit(SubmitRequest {
            client_tag: tag,
            class: class.to_owned(),
            budget_ms: remaining.as_millis().max(1) as u64,
            want_progress: self.config.want_progress,
            payload: payload.to_vec(),
        });
        let conn = match self.connection(deadline) {
            Ok(conn) => conn,
            Err(ClientError::DeadlineExhausted) => {
                return Err(AttemptError::Fatal(ClientError::DeadlineExhausted))
            }
            // Connect failures are transient: retry with backoff.
            Err(e) => return Err(AttemptError::retry(e)),
        };
        if let Err(e) = wire::write_frame(&mut conn.stream, &submit) {
            self.conn = None;
            return Err(AttemptError::retry(ClientError::Wire(e)));
        }
        let mut stage_updates = Vec::new();
        loop {
            if Instant::now() >= deadline {
                // The submit may still complete server-side, but our
                // budget is gone; drop the connection so a stale Final
                // cannot confuse the next request.
                self.conn = None;
                return Err(AttemptError::Fatal(ClientError::DeadlineExhausted));
            }
            let conn = self.conn.as_mut().expect("connection present");
            let frame = match conn.buffer.poll(&mut conn.stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => continue,
                Err(e) => {
                    self.conn = None;
                    return Err(AttemptError::retry(ClientError::Wire(e)));
                }
            };
            match frame {
                Frame::StageUpdate {
                    client_tag,
                    stage,
                    confidence,
                    predicted,
                } if client_tag == tag => {
                    stage_updates.push(StageUpdate {
                        stage,
                        confidence,
                        predicted,
                    });
                }
                Frame::Final {
                    client_tag,
                    response,
                } if client_tag == tag => {
                    return Ok(InferenceOutcome {
                        predicted: response.predicted,
                        confidence: response.confidence,
                        stages_executed: response.stages_executed,
                        expired: response.expired,
                        server_latency: Duration::from_micros(response.latency_us),
                        round_trip: Duration::ZERO, // filled by infer()
                        stage_updates,
                        attempts: 0, // filled by infer()
                    });
                }
                Frame::Reject {
                    client_tag,
                    retry_after_ms,
                } if client_tag == tag => {
                    let retry_after = Duration::from_millis(retry_after_ms);
                    return Err(AttemptError::Retry {
                        floor: retry_after,
                        error: ClientError::Rejected { retry_after },
                    });
                }
                // Stale frames from a previous timed-out tag, pongs, etc.
                _ => {}
            }
        }
    }
}

enum AttemptError {
    /// Retry after backing off at least `floor`.
    Retry { floor: Duration, error: ClientError },
    /// Not retryable; surface to the caller.
    Fatal(ClientError),
}

impl AttemptError {
    fn retry(error: ClientError) -> Self {
        AttemptError::Retry {
            floor: Duration::ZERO,
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            seed: 7,
            ..ClientConfig::default()
        };
        let mut a = EugeneClient::new("127.0.0.1:1", config.clone()).unwrap();
        let mut b = EugeneClient::new("127.0.0.1:1", config).unwrap();
        for attempt in 1..10 {
            let x = a.backoff(attempt);
            let y = b.backoff(attempt);
            assert_eq!(x, y, "same seed, same jitter");
            // Cap 80ms, jitter < 1.5: never above 120ms.
            assert!(x <= Duration::from_millis(120), "attempt {attempt}: {x:?}");
            assert!(x >= Duration::from_millis(5), "attempt {attempt}: {x:?}");
        }
    }

    #[test]
    fn infer_against_dead_address_respects_budget() {
        // Nothing listens on this port; every attempt fails fast and the
        // client must give up within (roughly) the budget.
        let mut client = EugeneClient::new(
            "127.0.0.1:1",
            ClientConfig {
                connect_timeout: Duration::from_millis(50),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let started = Instant::now();
        let result = client.infer("c", &[1.0], Duration::from_millis(200));
        assert!(result.is_err());
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "retry loop must stay bounded by the budget"
        );
    }
}
