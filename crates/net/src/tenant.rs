//! Per-tenant admission: quotas, weighted fair shedding, and gauges.
//!
//! The gateway's global admission control (high-water/hard-cap with
//! class-utility shedding) treats every submitter as one anonymous
//! crowd, so a single misbehaving client can push the whole gateway
//! into overload and get *other* tenants' traffic shed. The
//! [`TenantGovernor`] fixes that for requests that carry a tenant
//! identity (the trailing `tenant` field on `Submit`):
//!
//! - each tenant may carry a hard per-tenant in-flight cap
//!   ([`TenantQuota::max_in_flight`]), enforced at any load;
//! - under overload (gateway load at or past `high_water`), a tenant is
//!   shed once its own in-flight share reaches its *weighted fair
//!   share* of the hard cap — `weight / total_weight × hard_cap` — so
//!   the tenant that grew past its share sheds first while tenants
//!   within their share keep being admitted, all the way to the hard
//!   cap;
//! - anonymous requests (no tenant field, every pre-registry client)
//!   keep the exact legacy class-utility admission path.
//!
//! Shed decisions answer with
//! [`RejectReason::TenantOverQuota`](crate::wire::RejectReason) so a
//! client can tell "the gateway is full" from "I am over my quota".

use crate::wire::RejectReason;
use eugene_serve::TenantBreakdown;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Admission quota for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuota {
    /// Fair-share weight under overload: a tenant's protected share of
    /// the gateway's hard cap is `weight / total_weight` (summed over
    /// all configured tenants, plus this quota if unconfigured).
    pub weight: f64,
    /// Hard per-tenant in-flight cap, enforced at any load. `None`
    /// bounds the tenant only by its fair share and the gateway caps.
    pub max_in_flight: Option<u64>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            weight: 1.0,
            max_in_flight: None,
        }
    }
}

/// Why (and with what hint) a tenant submission was shed.
pub(crate) struct TenantShed {
    pub(crate) retry_after_ms: u64,
    pub(crate) reason: RejectReason,
}

/// The backoff hint for an admission reject: load-scaled, capped at 1s
/// (same shape as the anonymous path's hint).
fn retry_hint(overshoot: u64) -> u64 {
    (10 * (overshoot + 1)).min(1_000)
}

#[derive(Debug, Default)]
struct TenantGauges {
    in_flight: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

/// Holds one tenant's in-flight unit from admission until the request's
/// `Final` is written (drop releases), mirroring `AdmissionSlot` at the
/// per-tenant granularity.
pub(crate) struct TenantSlot {
    gauges: Arc<TenantGauges>,
}

impl Drop for TenantSlot {
    fn drop(&mut self) {
        self.gauges.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct GovernorInner {
    quotas: HashMap<String, TenantQuota>,
    default_quota: TenantQuota,
    /// Sum of configured quota weights; an unconfigured tenant adds the
    /// default quota's weight on top when computing its share.
    configured_weight: f64,
    /// Gauges per tenant name ever seen, created on first contact.
    gauges: Mutex<HashMap<String, Arc<TenantGauges>>>,
}

/// Cloneable per-tenant admission state shared by a gateway's
/// connections (both backends) and its stats snapshot.
#[derive(Clone)]
pub(crate) struct TenantGovernor {
    inner: Arc<GovernorInner>,
}

impl TenantGovernor {
    pub(crate) fn new(quotas: HashMap<String, TenantQuota>, default_quota: TenantQuota) -> Self {
        let configured_weight = quotas.values().map(|q| q.weight.max(0.0)).sum();
        Self {
            inner: Arc::new(GovernorInner {
                quotas,
                default_quota,
                configured_weight,
                gauges: Mutex::new(HashMap::new()),
            }),
        }
    }

    fn gauges_of(&self, tenant: &str) -> Arc<TenantGauges> {
        Arc::clone(
            self.inner
                .gauges
                .lock()
                .entry(tenant.to_owned())
                .or_default(),
        )
    }

    /// The quota governing `tenant` and the total weight its share is
    /// computed against.
    fn quota_of(&self, tenant: &str) -> (TenantQuota, f64) {
        match self.inner.quotas.get(tenant) {
            Some(quota) => (quota.clone(), self.inner.configured_weight),
            None => (
                self.inner.default_quota.clone(),
                self.inner.configured_weight + self.inner.default_quota.weight.max(0.0),
            ),
        }
    }

    /// Admission decision for `tenant` at gateway in-flight `load`.
    /// Pure: gauges are only read, so the caller can run this inside a
    /// reservation CAS loop and only commit effects on success.
    pub(crate) fn decide(
        &self,
        tenant: &str,
        load: u64,
        high_water: u64,
        hard_cap: u64,
    ) -> Result<(), TenantShed> {
        let gauges = self.gauges_of(tenant);
        let (quota, total_weight) = self.quota_of(tenant);
        let tenant_in_flight = gauges.in_flight.load(Ordering::Acquire);
        if let Some(cap) = quota.max_in_flight {
            if tenant_in_flight >= cap {
                return Err(TenantShed {
                    retry_after_ms: retry_hint(tenant_in_flight.saturating_sub(cap)),
                    reason: RejectReason::TenantOverQuota,
                });
            }
        }
        if load >= hard_cap {
            return Err(TenantShed {
                retry_after_ms: retry_hint(load.saturating_sub(high_water)),
                reason: RejectReason::Overload,
            });
        }
        if load >= high_water {
            // Weighted fair shedding: past the high-water mark a tenant
            // only grows while it is within its share of the hard cap,
            // so the tenant that overshot sheds its own traffic first
            // and compliant tenants ride through the overload.
            let share = if total_weight > 0.0 {
                quota.weight.max(0.0) / total_weight * hard_cap as f64
            } else {
                hard_cap as f64
            };
            if tenant_in_flight as f64 >= share {
                return Err(TenantShed {
                    retry_after_ms: retry_hint(load.saturating_sub(high_water)),
                    reason: RejectReason::TenantOverQuota,
                });
            }
        }
        Ok(())
    }

    /// Commits an admission: counts it and returns the in-flight guard.
    pub(crate) fn begin(&self, tenant: &str) -> TenantSlot {
        let gauges = self.gauges_of(tenant);
        gauges.admitted.fetch_add(1, Ordering::Relaxed);
        gauges.in_flight.fetch_add(1, Ordering::AcqRel);
        TenantSlot { gauges }
    }

    /// Counts a shed decision against `tenant`.
    pub(crate) fn note_shed(&self, tenant: &str) {
        self.gauges_of(tenant).shed.fetch_add(1, Ordering::Relaxed);
    }

    /// One breakdown row per tenant ever seen.
    pub(crate) fn snapshot(&self) -> BTreeMap<String, TenantBreakdown> {
        self.inner
            .gauges
            .lock()
            .iter()
            .map(|(name, gauges)| {
                (
                    name.clone(),
                    TenantBreakdown {
                        admitted: gauges.admitted.load(Ordering::Relaxed),
                        shed: gauges.shed.load(Ordering::Relaxed),
                        in_flight: gauges.in_flight.load(Ordering::Acquire),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(quotas: &[(&str, f64, Option<u64>)]) -> TenantGovernor {
        TenantGovernor::new(
            quotas
                .iter()
                .map(|(name, weight, cap)| {
                    (
                        (*name).to_owned(),
                        TenantQuota {
                            weight: *weight,
                            max_in_flight: *cap,
                        },
                    )
                })
                .collect(),
            TenantQuota::default(),
        )
    }

    #[test]
    fn below_high_water_everyone_is_admitted() {
        let g = governor(&[("a", 1.0, None), ("b", 1.0, None)]);
        assert!(g.decide("a", 0, 8, 16).is_ok());
        assert!(g.decide("unconfigured", 7, 8, 16).is_ok());
    }

    #[test]
    fn per_tenant_cap_binds_at_any_load() {
        let g = governor(&[("a", 1.0, Some(2))]);
        let _one = g.begin("a");
        let _two = g.begin("a");
        let shed = g.decide("a", 0, 8, 16).unwrap_err();
        assert_eq!(shed.reason, RejectReason::TenantOverQuota);
        assert!(shed.retry_after_ms > 0);
        // Releasing an in-flight unit reopens the cap.
        drop(_one);
        assert!(g.decide("a", 0, 8, 16).is_ok());
    }

    #[test]
    fn overload_sheds_the_tenant_over_its_fair_share_first() {
        // Equal weights over hard_cap 16: each tenant's share is 8.
        let g = governor(&[("greedy", 1.0, None), ("polite", 1.0, None)]);
        let mut held = Vec::new();
        for _ in 0..8 {
            held.push(g.begin("greedy"));
        }
        let _p = g.begin("polite");
        // Past high water, greedy (at its share) is shed...
        let shed = g.decide("greedy", 9, 8, 16).unwrap_err();
        assert_eq!(shed.reason, RejectReason::TenantOverQuota);
        // ...while polite (1 of 8) keeps being admitted to the hard cap.
        assert!(g.decide("polite", 9, 8, 16).is_ok());
        assert!(g.decide("polite", 15, 8, 16).is_ok());
        // Nobody beats the hard cap.
        let full = g.decide("polite", 16, 8, 16).unwrap_err();
        assert_eq!(full.reason, RejectReason::Overload);
    }

    #[test]
    fn weights_skew_the_shares() {
        // 3:1 over hard_cap 16 → shares 12 and 4.
        let g = governor(&[("big", 3.0, None), ("small", 1.0, None)]);
        let mut held = Vec::new();
        for _ in 0..4 {
            held.push(g.begin("small"));
        }
        assert!(g.decide("small", 10, 8, 16).is_err());
        for _ in 0..4 {
            held.push(g.begin("big"));
        }
        assert!(g.decide("big", 10, 8, 16).is_ok(), "4 of 12 used");
    }

    #[test]
    fn snapshot_rows_track_admitted_shed_and_in_flight() {
        let g = governor(&[("a", 1.0, Some(1))]);
        let slot = g.begin("a");
        g.note_shed("a");
        g.note_shed("b");
        let rows = g.snapshot();
        assert_eq!(rows["a"].admitted, 1);
        assert_eq!(rows["a"].shed, 1);
        assert_eq!(rows["a"].in_flight, 1);
        assert_eq!(rows["b"].admitted, 0);
        assert_eq!(rows["b"].shed, 1);
        drop(slot);
        assert_eq!(g.snapshot()["a"].in_flight, 0, "slot drop releases");
    }
}
