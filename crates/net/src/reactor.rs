//! Minimal readiness poller for the gateway's event-driven paths.
//!
//! No async runtime and no `libc` crate are vendored, so this module
//! speaks to the platform directly through `extern "C"` declarations
//! against the C library that `std` already links: `epoll` on Linux (the
//! default, O(ready) wakeups) and a portable `poll(2)` fallback that
//! compiles everywhere Unix. Both sit behind the same [`Poller`] handle,
//! and both are *level-triggered*: an fd with unconsumed readiness shows
//! up on every [`Poller::wait`] until it is drained, so callers never
//! need edge-triggered re-arming discipline.
//!
//! A [`Waker`] (the classic self-pipe) lets other threads — the serving
//! runtime's completion hook, `Gateway::shutdown` — nudge a thread
//! blocked in [`Poller::wait`] without any timeout-based polling.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

mod ffi {
    use std::os::raw::{c_int, c_short, c_ulong, c_void};

    // The kernel packs epoll_event on x86-64 so the 32-bit `events` field
    // is followed immediately by the 64-bit data word.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(all(target_os = "linux", not(target_arch = "x86_64")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[repr(C)]
    pub struct Rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    pub const RLIMIT_NOFILE: c_int = 7;
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Which readiness a registered fd is watched for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the registered token plus what the fd is ready
/// for. `hangup` covers peer close and error conditions; a level-
/// triggered reader will also observe these as an EOF/error on read.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// A readiness poller over raw fds: `epoll` on Linux, `poll(2)` anywhere
/// else (and on demand, for testing the portable path on Linux too).
pub enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Poll(PollPoller),
}

impl Poller {
    /// The platform-preferred poller: `epoll` on Linux, `poll(2)` elsewhere.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller::Epoll(EpollPoller::new()?))
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::new_portable()
        }
    }

    /// The portable `poll(2)` implementation, regardless of platform.
    pub fn new_portable() -> io::Result<Self> {
        Ok(Poller::Poll(PollPoller::new()))
    }

    /// Starts watching `fd` under `token`. One registration per fd.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes the interest set of an already registered fd.
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.reregister(fd, token, interest),
            Poller::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses; `None` waits indefinitely), appending events to `events`
    /// after clearing it. Spurious empty returns are allowed.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout),
            Poller::Poll(p) => p.wait(events, timeout),
        }
    }
}

fn timeout_to_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs timeout does not become a busy-loop of
        // zero-timeout polls.
        Some(t) => t
            .as_millis()
            .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    }
}

/// The Linux `epoll` poller: O(ready) wakeups, scales to tens of
/// thousands of mostly idle connections.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    /// Scratch buffer reused across waits.
    buf: Vec<ffi::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_os_error());
        }
        Ok(Self {
            epfd,
            buf: vec![ffi::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut mask = ffi::EPOLLRDHUP;
        if interest.readable {
            mask |= ffi::EPOLLIN;
        }
        if interest.writable {
            mask |= ffi::EPOLLOUT;
        }
        mask
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut event = ffi::EpollEvent {
            events: Self::mask(interest),
            data: token as u64,
        };
        if unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut event) } < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_ADD, fd, token, interest)
    }

    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_MOD, fd, token, interest)
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        // Kernels before 2.6.9 demanded a non-null event even for DEL.
        let mut dummy = ffi::EpollEvent { events: 0, data: 0 };
        if unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_DEL, fd, &mut dummy) } < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let n = loop {
            let n = unsafe {
                ffi::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_to_ms(timeout),
                )
            };
            if n >= 0 {
                break n as usize;
            }
            let err = last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for slot in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let mask = slot.events;
            let token = slot.data as usize;
            events.push(Event {
                token,
                readable: mask & ffi::EPOLLIN != 0,
                writable: mask & ffi::EPOLLOUT != 0,
                hangup: mask & (ffi::EPOLLHUP | ffi::EPOLLERR | ffi::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe { ffi::close(self.epfd) };
    }
}

/// The portable `poll(2)` poller: O(registered) per wait, fine for the
/// accept path and small fleets, the fallback where epoll is missing.
pub struct PollPoller {
    entries: Vec<(RawFd, usize, Interest)>,
    scratch: Vec<ffi::PollFd>,
}

impl Default for PollPoller {
    fn default() -> Self {
        Self::new()
    }
}

impl PollPoller {
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            scratch: Vec::new(),
        }
    }

    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.entries.iter().any(|(f, _, _)| *f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        for entry in &mut self.entries {
            if entry.0 == fd {
                *entry = (fd, token, interest);
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.entries.len();
        self.entries.retain(|(f, _, _)| *f != fd);
        if self.entries.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.scratch.clear();
        for &(fd, _, interest) in &self.entries {
            let mut mask = 0;
            if interest.readable {
                mask |= ffi::POLLIN;
            }
            if interest.writable {
                mask |= ffi::POLLOUT;
            }
            self.scratch.push(ffi::PollFd {
                fd,
                events: mask,
                revents: 0,
            });
        }
        let n = loop {
            let n = unsafe {
                ffi::poll(
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as std::os::raw::c_ulong,
                    timeout_to_ms(timeout),
                )
            };
            if n >= 0 {
                break n;
            }
            let err = last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        if n == 0 {
            return Ok(());
        }
        for (slot, &(_, token, _)) in self.scratch.iter().zip(&self.entries) {
            let revents = slot.revents;
            if revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: revents & ffi::POLLIN != 0,
                writable: revents & ffi::POLLOUT != 0,
                hangup: revents & (ffi::POLLHUP | ffi::POLLERR | ffi::POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { ffi::fcntl(fd, ffi::F_GETFL, 0) };
    if flags < 0 {
        return Err(last_os_error());
    }
    if unsafe { ffi::fcntl(fd, ffi::F_SETFL, flags | ffi::O_NONBLOCK) } < 0 {
        return Err(last_os_error());
    }
    Ok(())
}

struct WakerInner {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Drop for WakerInner {
    fn drop(&mut self) {
        unsafe {
            ffi::close(self.read_fd);
            ffi::close(self.write_fd);
        }
    }
}

/// Self-pipe wakeup handle: cloneable and cheap to signal from any
/// thread. Register [`Waker::read_fd`] with a [`Poller`] (readable
/// interest); [`Waker::wake`] makes the next `wait` return, and the
/// owning loop calls [`Waker::drain`] to clear the pipe.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

impl Waker {
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        if unsafe { ffi::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(last_os_error());
        }
        let inner = WakerInner {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        // Both ends non-blocking: `wake` must never stall its caller (a
        // full pipe already guarantees a pending wakeup), and `drain`
        // must never stall the loop.
        set_nonblocking(inner.read_fd)?;
        set_nonblocking(inner.write_fd)?;
        Ok(Self {
            inner: Arc::new(inner),
        })
    }

    /// The fd to register for readable interest.
    pub fn read_fd(&self) -> RawFd {
        self.inner.read_fd
    }

    /// Nudges the poller; coalesces freely (a full pipe means a wakeup is
    /// already pending, so the error is ignored by design).
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            ffi::write(
                self.inner.write_fd,
                &byte as *const u8 as *const std::os::raw::c_void,
                1,
            );
        }
    }

    /// Empties the pipe after a wakeup so level-triggered polling goes
    /// quiet again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe {
                ffi::read(
                    self.inner.read_fd,
                    buf.as_mut_ptr() as *mut std::os::raw::c_void,
                    buf.len(),
                )
            };
            if n <= 0 {
                return;
            }
        }
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker")
            .field("read_fd", &self.inner.read_fd)
            .finish()
    }
}

/// Best-effort raise of `RLIMIT_NOFILE` to at least `want` fds; returns
/// the soft limit actually in effect afterwards. Ten thousand idle
/// connections cost ~20k fds in a loopback benchmark (both ends live in
/// one process), which brushes common default limits.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = ffi::Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { ffi::getrlimit(ffi::RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    let target = ffi::Rlimit {
        rlim_cur: want.max(lim.rlim_cur),
        rlim_max: want.max(lim.rlim_max),
    };
    if unsafe { ffi::setrlimit(ffi::RLIMIT_NOFILE, &target) } == 0 {
        return target.rlim_cur;
    }
    // Could not raise the hard limit (not privileged): settle for the
    // largest soft limit the current hard limit allows.
    let capped = ffi::Rlimit {
        rlim_cur: want.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    if unsafe { ffi::setrlimit(ffi::RLIMIT_NOFILE, &capped) } == 0 {
        capped.rlim_cur
    } else {
        lim.rlim_cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pollers() -> Vec<(&'static str, Poller)> {
        let mut all = vec![("poll", Poller::new_portable().unwrap())];
        #[cfg(target_os = "linux")]
        all.push(("epoll", Poller::new().unwrap()));
        all
    }

    #[test]
    fn readable_socket_is_reported_under_its_token() {
        for (name, mut poller) in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            poller
                .register(server.as_raw_fd(), 7, Interest::READ)
                .unwrap();

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(events.is_empty(), "{name}: nothing written yet");

            client.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{name}: write must surface as readable, got {events:?}"
            );
            poller.deregister(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn write_interest_toggles_via_reregister() {
        for (name, mut poller) in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (_server, _) = listener.accept().unwrap();
            poller
                .register(client.as_raw_fd(), 3, Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events.iter().all(|e| !e.writable),
                "{name}: writable not requested"
            );
            poller
                .reregister(client.as_raw_fd(), 3, Interest::BOTH)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 3 && e.writable),
                "{name}: an idle socket's send buffer is writable"
            );
        }
    }

    #[test]
    fn hangup_is_reported_when_the_peer_closes() {
        for (name, mut poller) in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            poller
                .register(server.as_raw_fd(), 1, Interest::READ)
                .unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events
                    .iter()
                    .any(|e| e.token == 1 && (e.hangup || e.readable)),
                "{name}: peer close must wake the poller, got {events:?}"
            );
        }
    }

    #[test]
    fn waker_wakes_an_indefinite_wait() {
        for (name, mut poller) in pollers() {
            let waker = Waker::new().unwrap();
            poller.register(waker.read_fd(), 0, Interest::READ).unwrap();
            let remote = waker.clone();
            let nudger = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                remote.wake();
            });
            let started = Instant::now();
            let mut events = Vec::new();
            poller.wait(&mut events, None).unwrap();
            assert!(
                events.iter().any(|e| e.token == 0 && e.readable),
                "{name}: wake must surface on the pipe"
            );
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "{name}: wait returned promptly"
            );
            waker.drain();
            // Drained pipe goes quiet again (level-triggered).
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.is_empty(), "{name}: drained waker stays silent");
            nudger.join().unwrap();
        }
    }

    #[test]
    fn timeout_expires_with_no_events() {
        for (name, mut poller) in pollers() {
            let waker = Waker::new().unwrap();
            poller.register(waker.read_fd(), 0, Interest::READ).unwrap();
            let started = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(events.is_empty(), "{name}");
            assert!(
                started.elapsed() >= Duration::from_millis(25),
                "{name}: timeout honoured"
            );
        }
    }

    #[test]
    fn coalesced_wakes_need_one_drain() {
        let waker = Waker::new().unwrap();
        for _ in 0..10_000 {
            waker.wake(); // never blocks even with the pipe full
        }
        waker.drain();
        let mut poller = Poller::new().unwrap();
        poller.register(waker.read_fd(), 0, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "fully drained after a wake storm");
    }
}
