//! Binary wire protocol for the Eugene gateway.
//!
//! Every frame is a fixed 12-byte header followed by a payload:
//!
//! ```text
//! +----+----+---------+------+-------------+----------------+
//! | magic   | version | kind | len (u32le) | checksum (u32) |
//! | 2 bytes | 1 byte  | 1 B  | 4 bytes     | 4 bytes (le)   |
//! +----+----+---------+------+-------------+----------------+
//! | payload: `len` bytes, FNV-1a-32 checksummed             |
//! +---------------------------------------------------------+
//! ```
//!
//! Integers are little-endian; floats cross as IEEE-754 bits; strings and
//! vectors are `u32` length-prefixed. Payloads are capped at
//! [`MAX_FRAME_LEN`] so a forged header cannot coerce a huge allocation.
//! Decoding is total: any malformed, truncated, or corrupt input yields a
//! [`WireError`], never a panic.
//!
//! Version negotiation: a connection opens with [`Frame::Hello`] carrying
//! the client's highest supported version; the server answers
//! [`Frame::HelloAck`] with the version the connection will speak (the
//! minimum of both sides' maxima). Every subsequent header carries that
//! version and receivers reject frames they cannot speak with
//! [`WireError::UnsupportedVersion`].

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: an Eugene frame starts with these two bytes.
pub const MAGIC: [u8; 2] = [0xEB, 0x9E];

/// Highest protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Maximum payload length (16 MiB): bounds allocation from forged headers.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Header size in bytes: magic + version + kind + len + checksum.
pub const HEADER_LEN: usize = 12;

/// Inference submission as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen correlation id, echoed on every frame answering this
    /// submit. Unique per connection, not globally.
    pub client_tag: u64,
    /// Service class name; the gateway maps it to admission utility.
    pub class: String,
    /// Remaining deadline budget in milliseconds. Budgets, not absolute
    /// deadlines, cross the wire; the server re-anchors against its own
    /// clock, so clocks never need to agree.
    pub budget_ms: u64,
    /// Stream per-stage [`Frame::StageUpdate`]s before the final answer.
    pub want_progress: bool,
    /// Model input.
    pub payload: Vec<f32>,
    /// Sharding affinity: a sharded front tier consistently hashes this
    /// key onto its ring so a client's related requests land on the same
    /// shard. `None` lets the tier fall back to a per-connection key; a
    /// plain [`crate::server::Gateway`] ignores it entirely. Encoded as a
    /// trailing optional field, so pre-sharding peers interoperate: a
    /// payload that ends before this field decodes as `None`.
    pub routing_key: Option<u64>,
    /// Registry addressing: which named model this request targets. A
    /// multi-model gateway resolves it against its model registry;
    /// `None` (and any single-model gateway) means "the default model".
    /// Trailing optional field like `routing_key`: payloads that end
    /// before it decode as `None`, so pre-registry peers interoperate.
    pub model: Option<String>,
    /// Tenant identity for per-tenant admission quotas and fair shedding.
    /// `None` rides the anonymous legacy admission path. Trailing
    /// optional field after `model`; same lenient decoding.
    pub tenant: Option<String>,
    /// Replication metadata: the sharded front tier's ring epoch at the
    /// moment it routed (or failover-replayed) this submit. Purely
    /// observational below the router — a gateway ignores it — but it
    /// lets operators correlate a replayed request with the membership
    /// change that caused the replay. Trailing optional field after
    /// `tenant`; same lenient decoding, protocol stays v1.
    pub epoch: Option<u64>,
}

/// Why a submit was answered with [`Frame::Reject`].
///
/// Encoded as a trailing byte of the `Reject` payload. Decoders accept
/// payloads that end before it (frames from pre-sharding peers) and
/// default to [`RejectReason::Overload`], which was the only reason that
/// existed before the byte was introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RejectReason {
    /// Admission control shed the request; retry after the hinted backoff.
    #[default]
    Overload,
    /// The shard serving this session died mid-flight (or no shard is
    /// available). The request was *not* served; retrying opens a fresh
    /// session that the router admits onto a surviving shard.
    ShardLost,
    /// The submit named a model the gateway's registry does not currently
    /// hold (never loaded, or unloaded while the request was in transit).
    /// Not retryable against the same registry state.
    UnknownModel,
    /// The tenant named on the submit is over its per-tenant in-flight
    /// quota (or its weighted fair share under overload); other tenants'
    /// traffic is unaffected. Retry after the hinted backoff.
    TenantOverQuota,
}

impl RejectReason {
    fn as_byte(self) -> u8 {
        match self {
            RejectReason::Overload => 0,
            RejectReason::ShardLost => 1,
            RejectReason::UnknownModel => 2,
            RejectReason::TenantOverQuota => 3,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, WireError> {
        match byte {
            0 => Ok(RejectReason::Overload),
            1 => Ok(RejectReason::ShardLost),
            2 => Ok(RejectReason::UnknownModel),
            3 => Ok(RejectReason::TenantOverQuota),
            _ => Err(WireError::Malformed("reject reason byte out of range")),
        }
    }
}

/// Final inference answer as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// Predicted label from the last completed stage, if any stage ran.
    pub predicted: Option<u64>,
    /// Confidence of that prediction.
    pub confidence: Option<f32>,
    /// Stages that completed before answer/deadline/early-exit.
    pub stages_executed: u32,
    /// Whether the deadline daemon killed the request.
    pub expired: bool,
    /// Server-side latency in microseconds.
    pub latency_us: u64,
    /// Whether the runtime force-exited the request at an earlier stage
    /// under overload (anytime degradation): the answer is usable but
    /// shallower than the confidence threshold asked for. Encoded as a
    /// trailing optional byte, so pre-degradation peers interoperate.
    pub degraded: bool,
}

/// Every message that crosses a gateway connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server connection opener with the highest version the
    /// client speaks.
    Hello {
        max_version: u8,
    },
    /// Server → client handshake answer: the version this connection will
    /// speak.
    HelloAck {
        version: u8,
    },
    /// Client → server inference submission.
    Submit(SubmitRequest),
    /// Server → client per-stage progress for a submit that asked for it.
    StageUpdate {
        client_tag: u64,
        stage: u32,
        confidence: f32,
        predicted: u64,
    },
    /// Server → client final answer for a submit.
    Final {
        client_tag: u64,
        response: WireResponse,
    },
    /// Server → client rejection: the request was not served. `reason`
    /// distinguishes admission-control shedding (retry no sooner than
    /// `retry_after_ms`) from a lost shard (retry opens a new session on
    /// a survivor).
    Reject {
        client_tag: u64,
        retry_after_ms: u64,
        reason: RejectReason,
    },
    /// Liveness probe; answered by [`Frame::Pong`] with the same nonce.
    Ping {
        nonce: u64,
    },
    Pong {
        nonce: u64,
    },
    /// Client → server: no more submits, close after in-flight work.
    Shutdown,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloAck { .. } => 2,
            Frame::Submit(_) => 3,
            Frame::StageUpdate { .. } => 4,
            Frame::Final { .. } => 5,
            Frame::Reject { .. } => 6,
            Frame::Ping { .. } => 7,
            Frame::Pong { .. } => 8,
            Frame::Shutdown => 9,
        }
    }
}

/// Total decode/IO failure modes. Decoding never panics.
#[derive(Debug)]
pub enum WireError {
    /// First two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Header carried a version this build cannot speak.
    UnsupportedVersion(u8),
    /// Payload checksum mismatch (corruption in transit).
    BadChecksum { expected: u32, actual: u32 },
    /// Header carried an unknown frame kind.
    UnknownKind(u8),
    /// Input ended before the declared frame did.
    Truncated,
    /// Declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Payload structure invalid for its kind.
    Malformed(&'static str),
    /// Underlying socket/stream failure.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (max {PROTOCOL_VERSION})"
                )
            }
            WireError::BadChecksum { expected, actual } => write!(
                f,
                "payload checksum mismatch (header {expected:#010x}, computed {actual:#010x})"
            ),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized(len) => {
                write!(f, "payload length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// FNV-1a over the payload; cheap, endian-free, catches bit corruption.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn vec_f32(&mut self, v: &[f32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f32(x);
        }
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    fn opt_f32(&mut self, v: Option<f32>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f32(x);
            }
            None => self.bool(false),
        }
    }

    fn opt_string(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.bool(true);
                self.string(s);
            }
            None => self.bool(false),
        }
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match frame {
        Frame::Hello { max_version } => w.u8(*max_version),
        Frame::HelloAck { version } => w.u8(*version),
        Frame::Submit(req) => {
            w.u64(req.client_tag);
            w.string(&req.class);
            w.u64(req.budget_ms);
            w.bool(req.want_progress);
            w.vec_f32(&req.payload);
            w.opt_u64(req.routing_key);
            w.opt_string(req.model.as_deref());
            w.opt_string(req.tenant.as_deref());
            w.opt_u64(req.epoch);
        }
        Frame::StageUpdate {
            client_tag,
            stage,
            confidence,
            predicted,
        } => {
            w.u64(*client_tag);
            w.u32(*stage);
            w.f32(*confidence);
            w.u64(*predicted);
        }
        Frame::Final {
            client_tag,
            response,
        } => {
            w.u64(*client_tag);
            w.opt_u64(response.predicted);
            w.opt_f32(response.confidence);
            w.u32(response.stages_executed);
            w.bool(response.expired);
            w.u64(response.latency_us);
            w.bool(response.degraded);
        }
        Frame::Reject {
            client_tag,
            retry_after_ms,
            reason,
        } => {
            w.u64(*client_tag);
            w.u64(*retry_after_ms);
            w.u8(reason.as_byte());
        }
        Frame::Ping { nonce } | Frame::Pong { nonce } => w.u64(*nonce),
        Frame::Shutdown => {}
    }
    w.buf
}

/// Encodes one frame (header + payload) into a fresh buffer.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    debug_assert!(payload.len() as u32 <= MAX_FRAME_LEN);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(frame.kind());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame to a stream.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), WireError> {
    writer.write_all(&encode_frame(frame))?;
    writer.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader; every accessor errors (never
/// panics) on truncated input.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte out of range")),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string is not UTF-8"))
    }

    fn vec_f32(&mut self) -> Result<Vec<f32>, WireError> {
        let len = self.u32()? as usize;
        // Validate the declared length against what is actually present
        // before allocating, so a forged length cannot balloon memory.
        if len
            .checked_mul(4)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(WireError::Truncated);
        }
        (0..len).map(|_| self.f32()).collect()
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn opt_f32(&mut self) -> Result<Option<f32>, WireError> {
        Ok(if self.bool()? {
            Some(self.f32()?)
        } else {
            None
        })
    }

    fn opt_string(&mut self) -> Result<Option<String>, WireError> {
        Ok(if self.bool()? {
            Some(self.string()?)
        } else {
            None
        })
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = ByteReader::new(payload);
    let frame = match kind {
        1 => Frame::Hello {
            max_version: r.u8()?,
        },
        2 => Frame::HelloAck { version: r.u8()? },
        3 => Frame::Submit(SubmitRequest {
            client_tag: r.u64()?,
            class: r.string()?,
            budget_ms: r.u64()?,
            want_progress: r.bool()?,
            payload: r.vec_f32()?,
            // Trailing optional field: peers that predate sharding end the
            // payload here, which decodes as "no affinity".
            routing_key: if r.remaining() == 0 {
                None
            } else {
                r.opt_u64()?
            },
            // Trailing optional fields again: peers that predate the model
            // registry / tenant quotas end the payload earlier, which
            // decodes as "default model" / "anonymous tenant".
            model: if r.remaining() == 0 {
                None
            } else {
                r.opt_string()?
            },
            tenant: if r.remaining() == 0 {
                None
            } else {
                r.opt_string()?
            },
            // Trailing optional replication metadata (PR 9): peers that
            // predate replicated shard groups end the payload earlier,
            // which decodes as "no epoch stamped".
            epoch: if r.remaining() == 0 {
                None
            } else {
                r.opt_u64()?
            },
        }),
        4 => Frame::StageUpdate {
            client_tag: r.u64()?,
            stage: r.u32()?,
            confidence: r.f32()?,
            predicted: r.u64()?,
        },
        5 => Frame::Final {
            client_tag: r.u64()?,
            response: WireResponse {
                predicted: r.opt_u64()?,
                confidence: r.opt_f32()?,
                stages_executed: r.u32()?,
                expired: r.bool()?,
                latency_us: r.u64()?,
                // Trailing optional field: peers that predate anytime
                // degradation end the payload here, which decodes as
                // "not degraded".
                degraded: if r.remaining() == 0 { false } else { r.bool()? },
            },
        },
        6 => Frame::Reject {
            client_tag: r.u64()?,
            retry_after_ms: r.u64()?,
            // Trailing reason byte; absent from pre-sharding peers, whose
            // only reject cause was admission-control overload.
            reason: if r.remaining() == 0 {
                RejectReason::Overload
            } else {
                RejectReason::from_byte(r.u8()?)?
            },
        },
        7 => Frame::Ping { nonce: r.u64()? },
        8 => Frame::Pong { nonce: r.u64()? },
        9 => Frame::Shutdown,
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Decodes one frame from the start of `bytes`, returning the frame and
/// how many bytes it consumed. Never panics; any malformed, truncated, or
/// corrupt input is a [`WireError`].
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if bytes[0..2] != MAGIC {
        return Err(WireError::BadMagic([bytes[0], bytes[1]]));
    }
    let version = bytes[2];
    if version == 0 || version > PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = bytes[3];
    let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let expected = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let total = HEADER_LEN + len as usize;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let payload = &bytes[HEADER_LEN..total];
    let actual = checksum(payload);
    if actual != expected {
        return Err(WireError::BadChecksum { expected, actual });
    }
    let frame = decode_payload(kind, payload)?;
    Ok((frame, total))
}

/// Reads one frame from a stream (e.g. a [`std::net::TcpStream`]).
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    let version = header[2];
    if version == 0 || version > PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = header[3];
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let expected = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let actual = checksum(&payload);
    if actual != expected {
        return Err(WireError::BadChecksum { expected, actual });
    }
    decode_payload(kind, &payload)
}

/// Incremental frame decoder over a polled (read-timeout) stream.
///
/// `read_exact` on a socket with a read timeout can consume a partial
/// header before timing out, silently desynchronizing the stream. This
/// buffer instead accumulates whatever bytes arrive and decodes complete
/// frames out of the front, so timeouts are always safe to retry.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to produce one frame, reading more bytes as needed.
    ///
    /// Returns `Ok(None)` when the underlying read would block or timed
    /// out before a full frame arrived (call again later); `Ok(Some(..))`
    /// for a decoded frame; [`WireError::Truncated`] when the peer closed
    /// the stream; any other [`WireError`] when the stream is corrupt
    /// (the connection should be dropped — there is no resynchronization).
    pub fn poll<R: Read>(&mut self, reader: &mut R) -> Result<Option<Frame>, WireError> {
        loop {
            match decode_frame(&self.buf) {
                Ok((frame, consumed)) => {
                    self.buf.drain(..consumed);
                    return Ok(Some(frame));
                }
                Err(WireError::Truncated) => {}
                Err(other) => return Err(other),
            }
            let mut chunk = [0u8; 4096];
            match reader.read(&mut chunk) {
                Ok(0) => return Err(WireError::Truncated),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                max_version: PROTOCOL_VERSION,
            },
            Frame::HelloAck {
                version: PROTOCOL_VERSION,
            },
            Frame::Submit(SubmitRequest {
                client_tag: 42,
                class: "interactive".to_owned(),
                budget_ms: 250,
                want_progress: true,
                payload: vec![0.25, -1.5, 3.75],
                routing_key: Some(0xFEED_F00D),
                model: Some("resnet-compressed".to_owned()),
                tenant: Some("acme".to_owned()),
                epoch: Some(7),
            }),
            Frame::Submit(SubmitRequest {
                client_tag: 44,
                class: "batch".to_owned(),
                budget_ms: 5_000,
                want_progress: false,
                payload: vec![],
                routing_key: None,
                model: None,
                tenant: None,
                epoch: None,
            }),
            Frame::StageUpdate {
                client_tag: 42,
                stage: 2,
                confidence: 0.875,
                predicted: 7,
            },
            Frame::Final {
                client_tag: 42,
                response: WireResponse {
                    predicted: Some(7),
                    confidence: Some(0.96),
                    stages_executed: 3,
                    expired: false,
                    latency_us: 1234,
                    degraded: false,
                },
            },
            Frame::Final {
                client_tag: 43,
                response: WireResponse {
                    predicted: None,
                    confidence: None,
                    stages_executed: 0,
                    expired: true,
                    latency_us: 50_000,
                    degraded: false,
                },
            },
            Frame::Final {
                client_tag: 44,
                response: WireResponse {
                    predicted: Some(2),
                    confidence: Some(0.55),
                    stages_executed: 1,
                    expired: false,
                    latency_us: 800,
                    degraded: true,
                },
            },
            Frame::Reject {
                client_tag: 9,
                retry_after_ms: 40,
                reason: RejectReason::Overload,
            },
            Frame::Reject {
                client_tag: 10,
                retry_after_ms: 25,
                reason: RejectReason::ShardLost,
            },
            Frame::Reject {
                client_tag: 11,
                retry_after_ms: 0,
                reason: RejectReason::UnknownModel,
            },
            Frame::Reject {
                client_tag: 12,
                retry_after_ms: 15,
                reason: RejectReason::TenantOverQuota,
            },
            Frame::Ping { nonce: 0xDEAD },
            Frame::Pong { nonce: 0xDEAD },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn frames_roundtrip() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (decoded, consumed) = decode_frame(&bytes).expect("decodes");
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn frames_roundtrip_through_streams() {
        let mut stream = Vec::new();
        for frame in sample_frames() {
            write_frame(&mut stream, &frame).unwrap();
        }
        let mut cursor = io::Cursor::new(stream);
        for frame in sample_frames() {
            assert_eq!(read_frame(&mut cursor).expect("reads"), frame);
        }
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = encode_frame(&Frame::Submit(SubmitRequest {
            client_tag: 1,
            class: "batch".to_owned(),
            budget_ms: 100,
            want_progress: false,
            payload: vec![1.0; 16],
            routing_key: Some(3),
            model: Some("full".to_owned()),
            tenant: Some("t".to_owned()),
            epoch: Some(12),
        }));
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).expect_err("truncation detected");
            assert!(
                matches!(err, WireError::Truncated),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = encode_frame(&Frame::Ping { nonce: 77 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_and_kind_are_rejected() {
        let good = encode_frame(&Frame::Shutdown);

        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert!(matches!(
            decode_frame(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[2] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            decode_frame(&bad_version),
            Err(WireError::UnsupportedVersion(_))
        ));

        let mut bad_kind = good.clone();
        bad_kind[3] = 0xFF;
        // Kind is not checksummed payload, so the checksum still passes and
        // the decoder must reject on the kind byte itself.
        assert!(matches!(
            decode_frame(&bad_kind),
            Err(WireError::UnknownKind(0xFF))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::Shutdown);
        bytes[4..8].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(WireError::Oversized(_))));
    }

    #[test]
    fn forged_vec_length_is_truncation_not_allocation() {
        // Hand-build a Submit whose payload claims u32::MAX floats.
        let mut w = Vec::new();
        w.extend_from_slice(&7u64.to_le_bytes()); // client_tag
        w.extend_from_slice(&1u32.to_le_bytes()); // class len
        w.push(b'x');
        w.extend_from_slice(&5u64.to_le_bytes()); // budget
        w.push(0); // want_progress
        w.extend_from_slice(&u32::MAX.to_le_bytes()); // forged vec len
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(3);
        bytes.extend_from_slice(&(w.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&checksum(&w).to_le_bytes());
        bytes.extend_from_slice(&w);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Truncated)));
    }

    #[test]
    fn frame_buffer_reassembles_dribbled_bytes() {
        // Feed a frame one byte at a time through a reader that yields a
        // single byte per call, interleaved with WouldBlock timeouts.
        struct Dribble {
            bytes: Vec<u8>,
            pos: usize,
            parity: bool,
        }
        impl Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                self.parity = !self.parity;
                if self.parity {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"));
                }
                if self.pos >= self.bytes.len() {
                    return Ok(0);
                }
                out[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let frame = Frame::Submit(SubmitRequest {
            client_tag: 5,
            class: "c".to_owned(),
            budget_ms: 9,
            want_progress: true,
            payload: vec![1.0, 2.0],
            routing_key: None,
            model: None,
            tenant: None,
            epoch: None,
        });
        let mut reader = Dribble {
            bytes: encode_frame(&frame),
            pos: 0,
            parity: false,
        };
        let mut buffer = FrameBuffer::new();
        let mut polls = 0;
        loop {
            polls += 1;
            assert!(polls < 1000, "frame never assembled");
            match buffer.poll(&mut reader).expect("no decode error") {
                Some(decoded) => {
                    assert_eq!(decoded, frame);
                    break;
                }
                None => continue,
            }
        }
        // Stream end after the frame reads as peer-closed.
        assert!(matches!(
            buffer.poll(&mut reader),
            Err(WireError::Truncated) | Ok(None)
        ));
    }

    /// Wraps a raw payload in a valid header of the given kind.
    fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(kind);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&checksum(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn legacy_final_without_degraded_flag_decodes_as_not_degraded() {
        // Pre-degradation builds end the Final payload at latency_us; the
        // missing trailing byte must decode as `degraded: false`.
        let mut payload = Vec::new();
        payload.extend_from_slice(&42u64.to_le_bytes()); // client_tag
        payload.push(1); // predicted: Some
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(1); // confidence: Some
        payload.extend_from_slice(&0.96f32.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes()); // stages_executed
        payload.push(0); // expired
        payload.extend_from_slice(&1234u64.to_le_bytes()); // latency_us
        let (frame, _) = decode_frame(&frame_bytes(5, &payload)).expect("legacy final decodes");
        assert_eq!(
            frame,
            Frame::Final {
                client_tag: 42,
                response: WireResponse {
                    predicted: Some(7),
                    confidence: Some(0.96),
                    stages_executed: 3,
                    expired: false,
                    latency_us: 1234,
                    degraded: false,
                },
            }
        );
    }

    #[test]
    fn legacy_reject_without_reason_decodes_as_overload() {
        // A 16-byte Reject payload (tag + retry hint, no reason byte) is
        // what pre-sharding builds emit; it must keep decoding.
        let mut payload = Vec::new();
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.extend_from_slice(&40u64.to_le_bytes());
        let (frame, _) = decode_frame(&frame_bytes(6, &payload)).expect("legacy reject decodes");
        assert_eq!(
            frame,
            Frame::Reject {
                client_tag: 9,
                retry_after_ms: 40,
                reason: RejectReason::Overload,
            }
        );
    }

    #[test]
    fn unknown_reject_reason_byte_is_malformed() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.extend_from_slice(&40u64.to_le_bytes());
        payload.push(0xFF);
        assert!(matches!(
            decode_frame(&frame_bytes(6, &payload)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn legacy_submit_without_routing_key_decodes_as_none() {
        // A Submit payload that ends right after the float vector (the
        // pre-sharding shape) must decode with routing_key: None.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes()); // client_tag
        payload.extend_from_slice(&1u32.to_le_bytes()); // class len
        payload.push(b'x');
        payload.extend_from_slice(&5u64.to_le_bytes()); // budget_ms
        payload.push(1); // want_progress
        payload.extend_from_slice(&1u32.to_le_bytes()); // vec len
        payload.extend_from_slice(&1.5f32.to_bits().to_le_bytes());
        let (frame, _) = decode_frame(&frame_bytes(3, &payload)).expect("legacy submit decodes");
        assert_eq!(
            frame,
            Frame::Submit(SubmitRequest {
                client_tag: 7,
                class: "x".to_owned(),
                budget_ms: 5,
                want_progress: true,
                payload: vec![1.5],
                routing_key: None,
                model: None,
                tenant: None,
                epoch: None,
            })
        );
    }

    #[test]
    fn pre_registry_submit_with_routing_key_decodes_without_model_or_tenant() {
        // A PR-5-era Submit ends right after the optional routing key;
        // model and tenant must decode as None.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes()); // client_tag
        payload.extend_from_slice(&1u32.to_le_bytes()); // class len
        payload.push(b'x');
        payload.extend_from_slice(&5u64.to_le_bytes()); // budget_ms
        payload.push(0); // want_progress
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty vec
        payload.push(1); // routing key present
        payload.extend_from_slice(&99u64.to_le_bytes());
        let (frame, _) = decode_frame(&frame_bytes(3, &payload)).expect("pre-registry decodes");
        assert_eq!(
            frame,
            Frame::Submit(SubmitRequest {
                client_tag: 7,
                class: "x".to_owned(),
                budget_ms: 5,
                want_progress: false,
                payload: vec![],
                routing_key: Some(99),
                model: None,
                tenant: None,
                epoch: None,
            })
        );
    }

    #[test]
    fn submit_ending_after_model_decodes_tenant_as_none() {
        // A payload carrying a model id but stopping before the tenant
        // field (a peer that knows models but not tenants) still decodes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes()); // client_tag
        payload.extend_from_slice(&1u32.to_le_bytes()); // class len
        payload.push(b'x');
        payload.extend_from_slice(&5u64.to_le_bytes()); // budget_ms
        payload.push(0); // want_progress
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty vec
        payload.push(0); // routing key absent
        payload.push(1); // model present
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(b"m1");
        let (frame, _) = decode_frame(&frame_bytes(3, &payload)).expect("model-only decodes");
        match frame {
            Frame::Submit(req) => {
                assert_eq!(req.model.as_deref(), Some("m1"));
                assert_eq!(req.tenant, None);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn submit_ending_after_tenant_decodes_epoch_as_none() {
        // A PR-8-era payload carrying a tenant but stopping before the
        // ring-epoch field (a peer that predates replicated shard groups)
        // still decodes, with no epoch stamped.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes()); // client_tag
        payload.extend_from_slice(&1u32.to_le_bytes()); // class len
        payload.push(b'x');
        payload.extend_from_slice(&5u64.to_le_bytes()); // budget_ms
        payload.push(0); // want_progress
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty vec
        payload.push(0); // routing key absent
        payload.push(0); // model absent
        payload.push(1); // tenant present
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(b"t1");
        let (frame, _) = decode_frame(&frame_bytes(3, &payload)).expect("tenant-era decodes");
        match frame {
            Frame::Submit(req) => {
                assert_eq!(req.tenant.as_deref(), Some("t1"));
                assert_eq!(req.epoch, None);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut payload = 9u64.to_le_bytes().to_vec();
        payload.push(0xAA); // one byte too many for a Ping
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(7);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }
}
