//! Networked service gateway for the Eugene serving runtime.
//!
//! The paper frames Eugene as *deep intelligence as a service*: clients on
//! the other side of a network hand inference requests to a shared
//! provider, each with a latency constraint, and the provider schedules
//! staged execution to answer as many requests as possible within their
//! deadlines. This crate supplies the missing network edge around
//! [`eugene_serve::ServingRuntime`]:
//!
//! - [`wire`]: a versioned, length-prefixed, checksummed binary framing
//!   with a typed [`wire::Frame`] codec that never panics on malformed or
//!   truncated input;
//! - [`server`]: a [`server::Gateway`] — a TCP server that multiplexes
//!   arbitrarily many in-flight requests per connection: each connection
//!   gets one reader plus a small bounded dispatcher pool that demuxes
//!   [`wire::Frame::StageUpdate`]/[`wire::Frame::Final`] frames by
//!   `client_tag` over a shared frame-atomic writer, while admission
//!   control atomically reserves an in-flight slot per submit (so
//!   concurrent submits can never blow past `hard_cap`) and sheds load
//!   with [`wire::Frame::Reject`] above the high-water mark
//!   (lowest-utility service classes first);
//! - [`client`]: a blocking serial [`client::EugeneClient`] plus a
//!   pipelining [`client::MultiplexClient`] that keeps many tagged
//!   requests outstanding on one connection; both apply deadline-aware
//!   retry — capped exponential backoff with jitter that never retries
//!   past the request's remaining budget;
//! - [`loadgen`]: a seeded open-loop Poisson load generator (one client
//!   per connection, or multiplexed over few connections) producing
//!   throughput/latency/reject-rate reports;
//!   the gateway also fronts a [`eugene_serve::ModelRegistry`] (multiple
//!   named models, loaded and unloaded at runtime) and a per-tenant
//!   admission governor ([`TenantQuota`]) with weighted fair shedding, so
//!   one misbehaving tenant sheds its own traffic first;
//! - [`shard`]: a [`shard::ShardRouter`] front tier that consistently
//!   hashes routing keys across N gateway shards (each with its own
//!   runtime). Every keyspace range has a replica group (primary plus
//!   warm standby); a dead shard's in-flight requests transparently
//!   replay to the standby under the default
//!   [`shard::FailoverPolicy::Replay`] (or are answered
//!   [`wire::RejectReason::ShardLost`] under the legacy
//!   [`shard::FailoverPolicy::Reject`] contract), shards can be added
//!   and removed live with bounded-remap migration, and an optional
//!   load-aware rebalancer narrows per-shard rps spread — same wire
//!   protocol, so every client above works unchanged against it.
//!
//! Deadlines cross the wire as *remaining budgets* (milliseconds), not
//! absolute times, so client and server clocks never need to agree: the
//! gateway re-anchors each budget against its own clock on receipt.
//!
//! # Examples
//!
//! See `examples/serving_over_network.rs` at the repository root, which
//! serves a staged model over a loopback socket and streams early-exit
//! progress to the client.

pub mod client;
pub mod loadgen;
pub mod reactor;
mod readiness;
pub mod server;
pub mod shard;
mod tenant;
pub mod wire;

pub use client::{
    ClientConfig, ClientError, EugeneClient, InferenceOutcome, MultiplexClient, PendingInference,
    SubmitOptions,
};
pub use loadgen::{
    ClassSpec, LoadReport, LoadgenConfig, LoadgenMode, TenantLoadReport, TenantSpec,
};
pub use server::{Gateway, GatewayBackend, GatewayConfig, GatewayStatus};
pub use shard::{
    FailoverPolicy, HashRing, RebalanceConfig, ReplicaConfig, ShardConfig, ShardRouter,
};
pub use tenant::TenantQuota;
pub use wire::{Frame, RejectReason, SubmitRequest, WireError, WireResponse, PROTOCOL_VERSION};
