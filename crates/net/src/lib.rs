//! Networked service gateway for the Eugene serving runtime.
//!
//! The paper frames Eugene as *deep intelligence as a service*: clients on
//! the other side of a network hand inference requests to a shared
//! provider, each with a latency constraint, and the provider schedules
//! staged execution to answer as many requests as possible within their
//! deadlines. This crate supplies the missing network edge around
//! [`eugene_serve::ServingRuntime`]:
//!
//! - [`wire`]: a versioned, length-prefixed, checksummed binary framing
//!   with a typed [`wire::Frame`] codec that never panics on malformed or
//!   truncated input;
//! - [`server`]: a [`server::Gateway`] — a thread-per-connection TCP
//!   server translating wire submits into runtime requests, streaming
//!   per-stage progress back as [`wire::Frame::StageUpdate`] frames, and
//!   shedding load with [`wire::Frame::Reject`] when the runtime is over
//!   its high-water mark (lowest-utility service classes first);
//! - [`client`]: a blocking [`client::EugeneClient`] with connect/read
//!   timeouts and deadline-aware retry — capped exponential backoff with
//!   jitter that never retries past the request's remaining budget;
//! - [`loadgen`]: a seeded multi-connection open-loop Poisson load
//!   generator producing throughput/latency/reject-rate reports.
//!
//! Deadlines cross the wire as *remaining budgets* (milliseconds), not
//! absolute times, so client and server clocks never need to agree: the
//! gateway re-anchors each budget against its own clock on receipt.
//!
//! # Examples
//!
//! See `examples/serving_over_network.rs` at the repository root, which
//! serves a staged model over a loopback socket and streams early-exit
//! progress to the client.

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, EugeneClient, InferenceOutcome};
pub use loadgen::{ClassSpec, LoadReport, LoadgenConfig};
pub use server::{Gateway, GatewayConfig};
pub use wire::{Frame, SubmitRequest, WireError, WireResponse, PROTOCOL_VERSION};
