//! TCP gateway exposing a [`ServingRuntime`] over the wire protocol.
//!
//! One accept thread plus one thread per connection; per-submit forwarder
//! threads stream [`Frame::StageUpdate`]s and the [`Frame::Final`] answer
//! back over a shared, frame-atomic writer. Admission control reads the
//! runtime's in-flight gauge: above the high-water mark the gateway sheds
//! the lowest-utility service classes first (rejecting with a
//! load-scaled `retry_after_ms`), and above the hard cap it rejects
//! everything. Shutdown is graceful: accepting stops, every connection
//! drains its in-flight submits, and the runtime itself is drained last.

use crate::wire::{self, Frame, FrameBuffer, SubmitRequest, WireError, PROTOCOL_VERSION};
use eugene_serve::{
    InferenceRequest, InferenceResponse, RuntimeStats, ServiceClass, ServingRuntime,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Admission-control and socket policy for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks a free port (see [`Gateway::local_addr`]).
    pub addr: String,
    /// In-flight load at which shedding begins.
    pub high_water: u64,
    /// In-flight load at which every class is rejected. Must exceed
    /// `high_water`.
    pub hard_cap: u64,
    /// Utility per service class; classes not listed default to `1.0`.
    /// Under overload, lower-utility classes are shed first.
    pub class_utility: HashMap<String, f64>,
    /// Socket read-poll granularity: how often connection threads check
    /// the shutdown flag while idle.
    pub read_poll: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            high_water: 64,
            hard_cap: 128,
            class_utility: HashMap::new(),
            read_poll: Duration::from_millis(20),
        }
    }
}

impl GatewayConfig {
    fn utility(&self, class: &str) -> f64 {
        self.class_utility.get(class).copied().unwrap_or(1.0)
    }

    fn max_utility(&self) -> f64 {
        self.class_utility.values().copied().fold(1.0f64, f64::max)
    }

    /// Admission decision for `class` at the given in-flight `load`:
    /// `Ok(())` admits, `Err(retry_after_ms)` rejects.
    ///
    /// Between `high_water` and `hard_cap` the utility bar rises linearly
    /// from zero to the maximum configured utility, so the lowest-utility
    /// classes are shed first and the highest-utility class survives
    /// until the hard cap.
    fn admit(&self, class: &str, load: u64) -> Result<(), u64> {
        if load < self.high_water {
            return Ok(());
        }
        let overshoot = load.saturating_sub(self.high_water);
        let retry_after_ms = (10 * (overshoot + 1)).min(1_000);
        if load >= self.hard_cap {
            return Err(retry_after_ms);
        }
        let span = self.hard_cap.saturating_sub(self.high_water).max(1);
        let pressure = overshoot as f64 / span as f64; // [0, 1)
        if self.utility(class) <= pressure * self.max_utility() {
            Err(retry_after_ms)
        } else {
            Ok(())
        }
    }
}

/// A running network gateway; dropping it (or calling
/// [`Gateway::shutdown`]) drains connections and the underlying runtime.
pub struct Gateway {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    runtime: Option<Arc<ServingRuntime>>,
    stats: RuntimeStats,
}

impl Gateway {
    /// Binds the listener and starts serving `runtime` over TCP.
    pub fn start(runtime: ServingRuntime, config: GatewayConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the accept thread can observe shutdown.
        listener.set_nonblocking(true)?;
        let stats = runtime.stats();
        let runtime = Arc::new(runtime);
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let config = Arc::new(config);
        let accept_handle = {
            let runtime = Arc::clone(&runtime);
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("eugene-gateway-accept".to_owned())
                .spawn(move || loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let runtime = Arc::clone(&runtime);
                            let stop = Arc::clone(&stop);
                            let config = Arc::clone(&config);
                            let handle = std::thread::Builder::new()
                                .name("eugene-gateway-conn".to_owned())
                                .spawn(move || {
                                    let _ = serve_connection(stream, runtime, config, stop);
                                })
                                .expect("spawn connection thread");
                            connections.lock().push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(Self {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            connections,
            runtime: Some(runtime),
            stats,
        })
    }

    /// The bound address (with the concrete port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live occupancy gauges of the underlying runtime.
    pub fn stats(&self) -> RuntimeStats {
        self.stats.clone()
    }

    /// Stops accepting, drains every connection's in-flight submits, then
    /// drains and joins the runtime.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(runtime) = self.runtime.take() {
            // All connection threads are joined, so this is the last Arc.
            if let Ok(runtime) = Arc::try_unwrap(runtime) {
                runtime.shutdown();
            }
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Shared write half of a connection; locks per frame so concurrent
/// forwarders never interleave bytes mid-frame.
type SharedWriter = Arc<Mutex<TcpStream>>;

fn send(writer: &SharedWriter, frame: &Frame) -> Result<(), WireError> {
    wire::write_frame(&mut *writer.lock(), frame)
}

fn serve_connection(
    mut stream: TcpStream,
    runtime: Arc<ServingRuntime>,
    config: Arc<GatewayConfig>,
    stop: Arc<AtomicBool>,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(config.read_poll))?;
    let writer: SharedWriter = Arc::new(Mutex::new(stream.try_clone()?));
    let mut buffer = FrameBuffer::new();
    let mut forwarders: Vec<JoinHandle<()>> = Vec::new();
    let stats = runtime.stats();

    // Handshake: the first frame must be Hello; anything else (or an
    // incompatible version) closes the connection.
    let hello = loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match buffer.poll(&mut stream)? {
            Some(frame) => break frame,
            None => continue,
        }
    };
    match hello {
        Frame::Hello { max_version } if max_version >= 1 => {
            send(
                &writer,
                &Frame::HelloAck {
                    version: PROTOCOL_VERSION.min(max_version),
                },
            )?;
        }
        _ => return Err(WireError::Malformed("expected Hello")),
    }

    let result = loop {
        if stop.load(Ordering::Relaxed) {
            break Ok(());
        }
        let frame = match buffer.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            // Peer closed or stream corrupt: stop reading, drain what is
            // already in flight.
            Err(WireError::Truncated) => break Ok(()),
            Err(e) => break Err(e),
        };
        match frame {
            Frame::Submit(submit) => {
                handle_submit(submit, &runtime, &stats, &config, &writer, &mut forwarders)
            }
            Frame::Ping { nonce } => {
                let _ = send(&writer, &Frame::Pong { nonce });
            }
            Frame::Shutdown => break Ok(()),
            // Clients have no business sending server->client frames or a
            // second Hello; ignore rather than kill in-flight work.
            _ => {}
        }
    };
    // Drain: every accepted submit still gets its Final before the socket
    // closes.
    for handle in forwarders {
        let _ = handle.join();
    }
    stream.shutdown(SocketShutdown::Both).ok();
    result
}

fn handle_submit(
    submit: SubmitRequest,
    runtime: &Arc<ServingRuntime>,
    stats: &RuntimeStats,
    config: &GatewayConfig,
    writer: &SharedWriter,
    forwarders: &mut Vec<JoinHandle<()>>,
) {
    let SubmitRequest {
        client_tag,
        class,
        budget_ms,
        want_progress,
        payload,
    } = submit;
    // A zero budget can never be met (and ServiceClass rejects it):
    // answer expired immediately rather than erroring the connection.
    if budget_ms == 0 {
        let _ = send(
            writer,
            &Frame::Final {
                client_tag,
                response: wire::WireResponse {
                    predicted: None,
                    confidence: None,
                    stages_executed: 0,
                    expired: true,
                    latency_us: 0,
                },
            },
        );
        return;
    }
    if let Err(retry_after_ms) = config.admit(&class, stats.in_flight()) {
        let _ = send(
            writer,
            &Frame::Reject {
                client_tag,
                retry_after_ms,
            },
        );
        return;
    }
    // Re-anchor the client's remaining budget on the server clock: the
    // deadline daemon runs against `now + budget`, so client/server
    // clocks never need to agree.
    let service_class = ServiceClass::new(&class, Duration::from_millis(budget_ms));
    let request = InferenceRequest::new(payload, service_class);
    let writer = Arc::clone(writer);
    if want_progress {
        let (_, response_rx, progress_rx) = runtime.submit_with_progress(request);
        forwarders.push(spawn_forwarder(move || {
            // Workers publish every stage report before the coordinator
            // finalizes, so the progress channel closes strictly before
            // the response arrives: drain it fully, then forward Final.
            for event in progress_rx.iter() {
                let frame = Frame::StageUpdate {
                    client_tag,
                    stage: event.stage as u32,
                    confidence: event.confidence,
                    predicted: event.predicted as u64,
                };
                if send(&writer, &frame).is_err() {
                    break;
                }
            }
            if let Ok(response) = response_rx.recv() {
                let _ = send(&writer, &final_frame(client_tag, response));
            }
        }));
    } else {
        let (_, response_rx) = runtime.submit(request);
        forwarders.push(spawn_forwarder(move || {
            if let Ok(response) = response_rx.recv() {
                let _ = send(&writer, &final_frame(client_tag, response));
            }
        }));
    }
}

fn spawn_forwarder(f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("eugene-gateway-forward".to_owned())
        .spawn(f)
        .expect("spawn forwarder thread")
}

fn final_frame(client_tag: u64, response: InferenceResponse) -> Frame {
    Frame::Final {
        client_tag,
        response: wire::WireResponse {
            predicted: response.predicted.map(|p| p as u64),
            confidence: response.confidence,
            stages_executed: response.stages_executed as u32,
            expired: response.expired,
            latency_us: response.latency.as_micros() as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_sheds_lowest_utility_first() {
        let mut config = GatewayConfig {
            high_water: 10,
            hard_cap: 20,
            ..GatewayConfig::default()
        };
        config.class_utility.insert("premium".to_owned(), 2.0);
        config.class_utility.insert("batch".to_owned(), 0.5);

        // Below high water: everyone admitted.
        assert!(config.admit("batch", 9).is_ok());
        // Mid-overload: batch (utility 0.5 <= 0.5*2.0) shed at pressure
        // 0.25 already, premium survives.
        assert!(config.admit("batch", 13).is_err());
        assert!(config.admit("premium", 13).is_ok());
        // Unlisted classes (utility 1.0) shed once pressure*max crosses 1.
        assert!(config.admit("anon", 13).is_ok());
        assert!(config.admit("anon", 16).is_err());
        // Hard cap: even premium rejected.
        assert!(config.admit("premium", 20).is_err());
    }

    #[test]
    fn retry_after_scales_with_overshoot() {
        let config = GatewayConfig {
            high_water: 10,
            hard_cap: 12,
            ..GatewayConfig::default()
        };
        let near = config.admit("x", 12).unwrap_err();
        let far = config.admit("x", 60).unwrap_err();
        assert!(far > near, "deeper overload asks for a longer backoff");
        assert!(config.admit("x", 10_000).unwrap_err() <= 1_000, "capped");
    }
}
