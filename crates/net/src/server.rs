//! TCP gateway exposing a [`ServingRuntime`] over the wire protocol.
//!
//! One accept thread plus, per connection, a *fixed* set of threads: the
//! connection's reader and a small bounded pool of dispatcher workers
//! that demultiplex [`Frame::StageUpdate`]/[`Frame::Final`] frames for
//! arbitrarily many concurrent client tags over one shared, frame-atomic
//! writer. Submits are pipelined: a connection never waits for one
//! request to finish before admitting the next, and no thread is ever
//! spawned per request.
//!
//! Admission control reserves an in-flight slot *atomically* (a CAS on
//! the gateway-wide reservation gauge), so concurrent submits can never
//! race past `hard_cap`: above the high-water mark the gateway sheds the
//! lowest-utility service classes first (rejecting with a load-scaled
//! `retry_after_ms`), and above the hard cap it rejects everything. A
//! slot is held from admission until the request's `Final` frame has
//! been written back.
//!
//! The accept loop retries transient errors (fd exhaustion, aborted
//! handshakes) with capped backoff and reaps finished connection handles
//! on every pass, so neither connection churn nor fd pressure can leak
//! handles or silently kill the gateway; a terminal accept failure is
//! surfaced through [`GatewayStatus::accept_failed`]. Shutdown is
//! graceful: accepting stops, every connection drains its in-flight
//! submits, and the runtime itself is drained last.

use crate::reactor::{self, Interest, Poller};
use crate::tenant::{TenantGovernor, TenantQuota, TenantSlot};
use crate::wire::{
    self, Frame, FrameBuffer, RejectReason, SubmitRequest, WireError, PROTOCOL_VERSION,
};
use eugene_serve::{
    InferenceRequest, InferenceResponse, ModelRegistry, RequestId, RuntimeStats, ServiceClass,
    ServingRuntime, StageProgress, StatsSnapshot,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which connection-handling engine a [`Gateway`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatewayBackend {
    /// One reader thread per connection plus a small dispatcher pool —
    /// simple, good at a few hundred active connections.
    #[default]
    Blocking,
    /// A single readiness-driven event loop (epoll on Linux, `poll(2)`
    /// elsewhere) owning every connection socket non-blockingly — holds
    /// tens of thousands of idle connections on a handful of threads.
    /// Same wire protocol, same admission control, same
    /// [`GatewayStatus`] semantics.
    Readiness,
}

/// Admission-control and socket policy for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks a free port (see [`Gateway::local_addr`]).
    pub addr: String,
    /// In-flight load at which shedding begins.
    pub high_water: u64,
    /// In-flight load at which every class is rejected. Must exceed
    /// `high_water`.
    pub hard_cap: u64,
    /// Utility per service class; classes not listed default to `1.0`.
    /// Under overload, lower-utility classes are shed first.
    pub class_utility: HashMap<String, f64>,
    /// Socket read-poll granularity: how often connection threads check
    /// the shutdown flag while idle (`Blocking` backend only — the
    /// `Readiness` backend never polls).
    pub read_poll: Duration,
    /// Dispatcher workers per connection: the bounded pool that forwards
    /// `StageUpdate`/`Final` frames for every in-flight tag. New submits
    /// are dealt round-robin across the pool; one worker already
    /// multiplexes arbitrarily many tags, more reduce head-of-line
    /// forwarding latency on hot connections. (`Blocking` backend only.)
    pub dispatch_workers: usize,
    /// Connection-handling engine; see [`GatewayBackend`].
    pub backend: GatewayBackend,
    /// Per-tenant admission quotas, keyed by the trailing `tenant` field
    /// on `Submit`. Identified tenants not listed here get
    /// `default_tenant_quota`; requests carrying no tenant ride the
    /// anonymous class-utility admission path unchanged (see
    /// [`crate::tenant`]).
    pub tenant_quotas: HashMap<String, TenantQuota>,
    /// Quota applied to identified tenants absent from `tenant_quotas`.
    pub default_tenant_quota: TenantQuota,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            high_water: 64,
            hard_cap: 128,
            class_utility: HashMap::new(),
            read_poll: Duration::from_millis(20),
            dispatch_workers: 2,
            backend: GatewayBackend::Blocking,
            tenant_quotas: HashMap::new(),
            default_tenant_quota: TenantQuota::default(),
        }
    }
}

impl GatewayConfig {
    fn utility(&self, class: &str) -> f64 {
        self.class_utility.get(class).copied().unwrap_or(1.0)
    }

    fn max_utility(&self) -> f64 {
        self.class_utility.values().copied().fold(1.0f64, f64::max)
    }

    /// Admission decision for `class` at the given in-flight `load`:
    /// `Ok(())` admits, `Err(retry_after_ms)` rejects.
    ///
    /// Between `high_water` and `hard_cap` the utility bar rises linearly
    /// from zero to the maximum configured utility, so the lowest-utility
    /// classes are shed first and the highest-utility class survives
    /// until the hard cap.
    fn admit(&self, class: &str, load: u64) -> Result<(), u64> {
        if load < self.high_water {
            return Ok(());
        }
        let overshoot = load.saturating_sub(self.high_water);
        let retry_after_ms = (10 * (overshoot + 1)).min(1_000);
        if load >= self.hard_cap {
            return Err(retry_after_ms);
        }
        let span = self.hard_cap.saturating_sub(self.high_water).max(1);
        let pressure = overshoot as f64 / span as f64; // [0, 1)
        if self.utility(class) <= pressure * self.max_utility() {
            Err(retry_after_ms)
        } else {
            Ok(())
        }
    }
}

/// Observability gauges for a [`Gateway`], cloneable and lock-free.
///
/// Distinct from [`RuntimeStats`] (the runtime's own occupancy): these
/// cover the network edge — admission reservations, accept-loop health,
/// connection churn, and the thread budget.
#[derive(Clone, Debug, Default)]
pub struct GatewayStatus {
    inner: Arc<StatusInner>,
}

#[derive(Debug, Default)]
struct StatusInner {
    /// Admission slots currently reserved (admission .. Final written).
    reserved: AtomicU64,
    /// High-water mark of `reserved` over the gateway's lifetime.
    peak_reserved: AtomicU64,
    /// Transient accept errors that were retried with backoff.
    accept_retries: AtomicU64,
    /// Set when the accept loop hit a terminal error and gave up.
    accept_failed: AtomicBool,
    /// Connections accepted / fully torn down since startup.
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    /// Gateway-spawned threads (connection readers + dispatchers) since
    /// startup; the per-request-thread leak regression tests assert this
    /// stays proportional to connections, not requests.
    threads_spawned: AtomicU64,
    /// Terminal answers written toward clients: `Final` frames and
    /// `Reject` frames, counted exactly once at the single write (or
    /// queue) point of each backend. `finals + rejects` is the
    /// gateway's total answered-request count, which a sharded front
    /// tier reconciles against client-side accounting to prove no
    /// request was dropped or double-answered across a failover.
    finals_sent: AtomicU64,
    rejects_sent: AtomicU64,
}

impl GatewayStatus {
    /// Admission slots currently held (admitted requests whose `Final`
    /// has not yet been written back).
    pub fn in_flight_reserved(&self) -> u64 {
        self.inner.reserved.load(Ordering::Acquire)
    }

    /// Lifetime peak of [`GatewayStatus::in_flight_reserved`]; by
    /// construction never exceeds the configured `hard_cap`.
    pub fn peak_in_flight(&self) -> u64 {
        self.inner.peak_reserved.load(Ordering::Acquire)
    }

    /// Transient accept errors absorbed with backoff so far.
    pub fn accept_retries(&self) -> u64 {
        self.inner.accept_retries.load(Ordering::Relaxed)
    }

    /// Whether the accept loop died on a terminal error: the gateway
    /// still serves existing connections but accepts no new ones.
    pub fn accept_failed(&self) -> bool {
        self.inner.accept_failed.load(Ordering::Relaxed)
    }

    /// Connections currently being served.
    pub fn open_connections(&self) -> u64 {
        self.inner
            .connections_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.inner.connections_closed.load(Ordering::Relaxed))
    }

    /// Connections accepted since startup.
    pub fn connections_opened(&self) -> u64 {
        self.inner.connections_opened.load(Ordering::Relaxed)
    }

    /// Gateway threads spawned since startup (readers + dispatchers on
    /// the `Blocking` backend; the single event loop on `Readiness`).
    /// Bounded by connections served, never by requests served.
    pub fn threads_spawned(&self) -> u64 {
        self.inner.threads_spawned.load(Ordering::Relaxed)
    }

    /// `Final` frames written toward clients since startup.
    pub fn finals_sent(&self) -> u64 {
        self.inner.finals_sent.load(Ordering::Relaxed)
    }

    /// `Reject` frames written toward clients since startup.
    pub fn rejects_sent(&self) -> u64 {
        self.inner.rejects_sent.load(Ordering::Relaxed)
    }

    // Shared mutation points for both backends.
    pub(crate) fn note_final_sent(&self) {
        self.inner.finals_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reject_sent(&self) {
        self.inner.rejects_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_connection_opened(&self) {
        self.inner
            .connections_opened
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_connection_closed(&self) {
        self.inner
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_thread_spawned(&self) {
        self.inner.threads_spawned.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_accept_retry(&self) {
        self.inner.accept_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_accept_failed(&self) {
        self.inner.accept_failed.store(true, Ordering::Relaxed);
    }
}

/// An admission reservation: holds one in-flight slot from the admission
/// decision until the request's `Final` frame is written (drop releases).
#[derive(Debug)]
pub(crate) struct AdmissionSlot {
    status: GatewayStatus,
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.status.inner.reserved.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Atomically reserves an in-flight slot, admitting via `decide` at the
/// observed load. The load test and CAS happen on the same gauge, so
/// concurrent submits cannot both observe `hard_cap - 1` and admit —
/// the read-then-submit TOCTOU of the thread-per-request design.
fn reserve_with<E>(
    status: &GatewayStatus,
    decide: impl Fn(u64) -> Result<(), E>,
) -> Result<AdmissionSlot, E> {
    loop {
        let load = status.inner.reserved.load(Ordering::Acquire);
        decide(load)?;
        if status
            .inner
            .reserved
            .compare_exchange(load, load + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            status
                .inner
                .peak_reserved
                .fetch_max(load + 1, Ordering::AcqRel);
            return Ok(AdmissionSlot {
                status: status.clone(),
            });
        }
        // Lost the race to another submit; re-read and re-decide.
    }
}

/// The anonymous (tenant-less) admission path: class-utility shedding
/// between `high_water` and `hard_cap`, reject hint on refusal.
pub(crate) fn try_reserve(
    config: &GatewayConfig,
    status: &GatewayStatus,
    class: &str,
) -> Result<AdmissionSlot, u64> {
    reserve_with(status, |load| config.admit(class, load))
}

/// Everything one admitted request holds until its `Final` frame is
/// written: the gateway-wide slot plus, for identified tenants, the
/// tenant's in-flight unit. Dropping releases both.
pub(crate) struct Lease {
    _slot: AdmissionSlot,
    _tenant: Option<TenantSlot>,
}

/// The full admission decision for one submit: anonymous requests take
/// the legacy class-utility path, identified tenants the quota /
/// weighted-fair-share path (see [`crate::tenant`]). `Err` carries the
/// reject frame's backoff hint and reason.
pub(crate) fn admit_submit(
    config: &GatewayConfig,
    status: &GatewayStatus,
    governor: &TenantGovernor,
    class: &str,
    tenant: Option<&str>,
) -> Result<Lease, (u64, RejectReason)> {
    match tenant {
        None => match try_reserve(config, status, class) {
            Ok(slot) => Ok(Lease {
                _slot: slot,
                _tenant: None,
            }),
            Err(retry_after_ms) => Err((retry_after_ms, RejectReason::Overload)),
        },
        Some(name) => {
            let reserved = reserve_with(status, |load| {
                governor.decide(name, load, config.high_water, config.hard_cap)
            });
            match reserved {
                Ok(slot) => Ok(Lease {
                    _slot: slot,
                    _tenant: Some(governor.begin(name)),
                }),
                Err(shed) => {
                    governor.note_shed(name);
                    Err((shed.retry_after_ms, shed.reason))
                }
            }
        }
    }
}

/// Accept errors worth retrying with backoff: transient fd/buffer
/// pressure and peers that vanished mid-handshake. Anything else (a
/// broken listener) is terminal.
pub(crate) fn is_transient_accept_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::Interrupted
            | io::ErrorKind::TimedOut
    ) || matches!(
        e.raw_os_error(),
        // ENOMEM, ENFILE, EMFILE, ENOBUFS: resource pressure recovers
        // once connections close; the raw codes are POSIX/Linux values.
        Some(12) | Some(23) | Some(24) | Some(105)
    )
}

/// Consecutive transient accept failures tolerated before giving up.
pub(crate) const ACCEPT_RETRY_LIMIT: u32 = 64;
/// First accept-error backoff; doubles per consecutive failure.
pub(crate) const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Upper bound on a single accept-error backoff sleep.
pub(crate) const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// A tracked connection thread. The flag flips true as the thread's
/// last act *before* it fires the exit wake; `JoinHandle::is_finished`
/// alone is not enough, because it only turns true after the closure has
/// fully returned — a reap pass triggered by the wake could observe the
/// handle still running, skip it, and then park in the poller with no
/// further wake coming.
type ConnSlot = (Arc<AtomicBool>, JoinHandle<()>);

/// A running network gateway; dropping it (or calling
/// [`Gateway::shutdown`]) drains connections and the underlying runtime.
pub struct Gateway {
    local_addr: SocketAddr,
    backend: GatewayBackend,
    stop: Arc<AtomicBool>,
    /// Nudges the accept loop (Blocking) or the event loop (Readiness)
    /// out of its poller wait: shutdown, and connection-thread exits.
    waker: reactor::Waker,
    accept_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<ConnSlot>>>,
    registry: ModelRegistry,
    governor: TenantGovernor,
    stats: RuntimeStats,
    status: GatewayStatus,
}

impl Gateway {
    /// Binds the listener and starts serving `runtime` over TCP, as a
    /// single-model deployment: the runtime is registered under
    /// [`eugene_serve::DEFAULT_MODEL`] and every submit resolves to it,
    /// whether or not it names a model.
    pub fn start(runtime: ServingRuntime, config: GatewayConfig) -> io::Result<Self> {
        Self::start_registry(ModelRegistry::single(runtime), config)
    }

    /// Binds the listener and serves a whole model registry: each
    /// submit's trailing model id is resolved against `registry` (its
    /// dispatcher picks for submits naming none), and models can be
    /// loaded/unloaded while the gateway is serving. The gateway owns
    /// the registry's lifecycle — [`Gateway::shutdown`] drains and
    /// unloads every model.
    pub fn start_registry(registry: ModelRegistry, config: GatewayConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept on both backends: the serving thread parks
        // in a poller, never in `accept`.
        listener.set_nonblocking(true)?;
        let stats = registry
            .stats_of(&registry.default_model())
            .unwrap_or_default();
        let status = GatewayStatus::default();
        let governor = TenantGovernor::new(
            config.tenant_quotas.clone(),
            config.default_tenant_quota.clone(),
        );
        let backend = config.backend;
        let stop = Arc::new(AtomicBool::new(false));
        let waker = reactor::Waker::new()?;
        let connections: Arc<Mutex<Vec<ConnSlot>>> = Arc::new(Mutex::new(Vec::new()));
        let config = Arc::new(config);
        let accept_handle = {
            let registry = registry.clone();
            let governor = governor.clone();
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let status = status.clone();
            let waker = waker.clone();
            match backend {
                GatewayBackend::Blocking => {
                    let poller = Poller::new()?;
                    std::thread::Builder::new()
                        .name("eugene-gateway-accept".to_owned())
                        .spawn(move || {
                            accept_loop(
                                listener,
                                registry,
                                governor,
                                config,
                                stop,
                                connections,
                                status,
                                poller,
                                waker,
                            )
                        })
                        .expect("spawn accept thread")
                }
                GatewayBackend::Readiness => crate::readiness::spawn(
                    listener, registry, governor, config, stop, status, waker,
                )?,
            }
        };
        Ok(Self {
            local_addr,
            backend,
            stop,
            waker,
            accept_handle: Some(accept_handle),
            connections,
            registry,
            governor,
            stats,
            status,
        })
    }

    /// The bound address (with the concrete port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live occupancy gauges of the default model's runtime (the whole
    /// deployment for a single-model gateway; see [`Gateway::snapshot`]
    /// for the multi-model aggregate).
    pub fn stats(&self) -> RuntimeStats {
        self.stats.clone()
    }

    /// The model registry this gateway serves; use it to load/unload
    /// models while the gateway is running.
    pub fn registry(&self) -> ModelRegistry {
        self.registry.clone()
    }

    /// The per-tenant admission governor (shared with the shard router's
    /// aggregation).
    pub(crate) fn governor(&self) -> TenantGovernor {
        self.governor.clone()
    }

    /// Aggregate deployment snapshot: per-model rows from the registry
    /// plus per-tenant admission rows from the gateway's governor.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snapshot = self.registry.snapshot();
        for (name, row) in self.governor.snapshot() {
            snapshot.per_tenant.entry(name).or_default().absorb(&row);
        }
        snapshot
    }

    /// Network-edge gauges: admission reservations, accept health,
    /// connection churn, thread budget.
    pub fn status(&self) -> GatewayStatus {
        self.status.clone()
    }

    /// Live connections the gateway is tracking. On the `Blocking`
    /// backend these are connection `JoinHandle`s — finished handles are
    /// reaped on every accept-loop pass, so under churn this stays close
    /// to [`GatewayStatus::open_connections`] rather than growing with
    /// every connection ever accepted. On the `Readiness` backend the
    /// event loop owns plain sockets, so this is exactly
    /// [`GatewayStatus::open_connections`].
    pub fn tracked_connections(&self) -> usize {
        match self.backend {
            GatewayBackend::Blocking => self.connections.lock().len(),
            GatewayBackend::Readiness => self.status.open_connections() as usize,
        }
    }

    /// The connection-handling engine this gateway runs.
    pub fn backend(&self) -> GatewayBackend {
        self.backend
    }

    /// Stops accepting, drains every connection's in-flight submits, then
    /// drains and joins the runtime.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The serving thread is parked in its poller, not on a timer:
        // kick it so shutdown begins immediately.
        self.waker.wake();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<ConnSlot> = std::mem::take(&mut *self.connections.lock());
        for (_done, handle) in handles {
            let _ = handle.join();
        }
        // All connection threads are joined: nothing submits anymore, so
        // draining the registry (idempotent) is race-free.
        self.registry.shutdown();
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Poller token for the listening socket in the accept loop.
const TOKEN_LISTENER: usize = 0;
/// Poller token for the wakeup pipe (shutdown + connection-thread exits).
const TOKEN_WAKER: usize = 1;

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    registry: ModelRegistry,
    governor: TenantGovernor,
    config: Arc<GatewayConfig>,
    stop: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<ConnSlot>>>,
    status: GatewayStatus,
    mut poller: Poller,
    waker: reactor::Waker,
) {
    // Park on readiness instead of a fixed sleep: a connect wakes the
    // loop immediately (no 5ms connect-latency tax) and an idle gateway
    // costs zero wakeups. The waker pipe covers everything that is not a
    // connect: shutdown, and connection threads announcing their exit so
    // their handles are reaped promptly.
    if poller
        .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
        .and_then(|()| poller.register(waker.read_fd(), TOKEN_WAKER, Interest::READ))
        .is_err()
    {
        status.note_accept_failed();
        return;
    }
    let mut backoff = ACCEPT_BACKOFF_BASE;
    let mut consecutive_errors = 0u32;
    let mut events = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        reap_finished(&connections);
        // Accept everything pending, then go back to sleep.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    consecutive_errors = 0;
                    backoff = ACCEPT_BACKOFF_BASE;
                    let registry = registry.clone();
                    let governor = governor.clone();
                    let stop = Arc::clone(&stop);
                    let config = Arc::clone(&config);
                    let status = status.clone();
                    let waker = waker.clone();
                    status.note_connection_opened();
                    status.note_thread_spawned();
                    let done = Arc::new(AtomicBool::new(false));
                    let thread_done = Arc::clone(&done);
                    let handle = std::thread::Builder::new()
                        .name("eugene-gateway-conn".to_owned())
                        .spawn(move || {
                            let _ =
                                serve_connection(stream, registry, governor, config, stop, &status);
                            status.note_connection_closed();
                            // Flag completion *before* waking the accept
                            // loop, so the reap pass the wake triggers is
                            // guaranteed to see this slot as done (see
                            // [`ConnSlot`]) and the handle is reaped
                            // without waiting for the next connect.
                            thread_done.store(true, Ordering::Release);
                            waker.wake();
                        })
                        .expect("spawn connection thread");
                    connections.lock().push((done, handle));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // The listener is drained. This is the loop's resting
                    // state, not an error: clear the backoff ladder so an
                    // earlier transient burst does not leave future
                    // retries starting at the cap.
                    consecutive_errors = 0;
                    backoff = ACCEPT_BACKOFF_BASE;
                    break;
                }
                Err(e) => {
                    consecutive_errors += 1;
                    if !is_transient_accept_error(&e) || consecutive_errors > ACCEPT_RETRY_LIMIT {
                        // Terminal: surface the dead accept path instead
                        // of leaving a gateway that looks alive but never
                        // accepts again.
                        status.note_accept_failed();
                        return;
                    }
                    status.note_accept_retry();
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
                    break;
                }
            }
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // Level-triggered: a connection that raced in between the drain
        // above and this wait is still pending, so the wait returns
        // immediately. A poller error here is terminal for accepting.
        if poller.wait(&mut events, None).is_err() {
            status.note_accept_failed();
            return;
        }
        if events.iter().any(|e| e.token == TOKEN_WAKER) {
            waker.drain();
        }
    }
}

/// Reaps every finished connection handle, keeping the tracked vector
/// bounded by *live* connections under churn. Handles are swap-removed
/// under the lock but joined outside it, so a connection thread that is
/// slow to exit can never stall [`Gateway::tracked_connections`] or the
/// accept loop's next pass.
fn reap_finished(connections: &Mutex<Vec<ConnSlot>>) {
    let finished: Vec<ConnSlot> = {
        let mut handles = connections.lock();
        let mut reaped = Vec::new();
        let mut i = 0;
        while i < handles.len() {
            // The done flag, not `is_finished`: the latter lags the exit
            // wake (see [`ConnSlot`]). The join below then waits out only
            // the final few instructions of the thread, outside the lock.
            if handles[i].0.load(Ordering::Acquire) || handles[i].1.is_finished() {
                reaped.push(handles.swap_remove(i));
            } else {
                i += 1;
            }
        }
        reaped
    };
    for (_done, handle) in finished {
        let _ = handle.join();
    }
}

/// Shared write half of a connection; locks per frame so the reader and
/// every dispatcher never interleave bytes mid-frame.
type SharedWriter = Arc<Mutex<TcpStream>>;

fn send(writer: &SharedWriter, frame: &Frame) -> Result<(), WireError> {
    wire::write_frame(&mut *writer.lock(), frame)
}

/// Registration of a newly admitted request with its dispatcher: sent by
/// the reader immediately after the runtime submit, carrying the slot
/// that is released once the `Final` goes out.
struct TrackRequest {
    id: RequestId,
    tag: u64,
    lease: Lease,
}

/// One dispatcher worker's channel set, held by the connection reader.
struct Dispatcher {
    track_tx: crossbeam::channel::Sender<TrackRequest>,
    respond_tx: crossbeam::channel::Sender<InferenceResponse>,
    progress_tx: crossbeam::channel::Sender<StageProgress>,
    handle: JoinHandle<()>,
}

fn serve_connection(
    mut stream: TcpStream,
    registry: ModelRegistry,
    governor: TenantGovernor,
    config: Arc<GatewayConfig>,
    stop: Arc<AtomicBool>,
    status: &GatewayStatus,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(config.read_poll))?;
    let writer: SharedWriter = Arc::new(Mutex::new(stream.try_clone()?));
    let mut buffer = FrameBuffer::new();

    // Handshake: the first frame must be Hello; anything else (or an
    // incompatible version) closes the connection.
    let hello = loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match buffer.poll(&mut stream)? {
            Some(frame) => break frame,
            None => continue,
        }
    };
    match hello {
        Frame::Hello { max_version } if max_version >= 1 => {
            send(
                &writer,
                &Frame::HelloAck {
                    version: PROTOCOL_VERSION.min(max_version),
                },
            )?;
        }
        _ => return Err(WireError::Malformed("expected Hello")),
    }

    // The bounded dispatcher pool: a fixed number of threads forwards
    // frames for every tag this connection ever has in flight.
    let pool_size = config.dispatch_workers.max(1);
    let mut dispatchers = Vec::with_capacity(pool_size);
    for i in 0..pool_size {
        let (track_tx, track_rx) = crossbeam::channel::unbounded();
        let (respond_tx, respond_rx) = crossbeam::channel::unbounded();
        let (progress_tx, progress_rx) = crossbeam::channel::unbounded();
        let writer = Arc::clone(&writer);
        status.inner.threads_spawned.fetch_add(1, Ordering::Relaxed);
        let dispatcher_status = status.clone();
        let handle = std::thread::Builder::new()
            .name(format!("eugene-gateway-dispatch-{i}"))
            .spawn(move || {
                dispatcher_loop(track_rx, respond_rx, progress_rx, writer, dispatcher_status)
            })
            .expect("spawn dispatcher thread");
        dispatchers.push(Dispatcher {
            track_tx,
            respond_tx,
            progress_tx,
            handle,
        });
    }
    let mut submits = 0usize;

    let result = loop {
        if stop.load(Ordering::Relaxed) {
            break Ok(());
        }
        let frame = match buffer.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            // Peer closed or stream corrupt: stop reading, drain what is
            // already in flight.
            Err(WireError::Truncated) => break Ok(()),
            Err(e) => break Err(e),
        };
        match frame {
            Frame::Submit(submit) => {
                let dispatcher = &dispatchers[submits % pool_size];
                submits += 1;
                handle_submit(
                    submit, &registry, &governor, &config, status, &writer, dispatcher,
                );
            }
            Frame::Ping { nonce } => {
                let _ = send(&writer, &Frame::Pong { nonce });
            }
            Frame::Shutdown => break Ok(()),
            // Clients have no business sending server->client frames or a
            // second Hello; ignore rather than kill in-flight work.
            _ => {}
        }
    };
    // Drain: every admitted submit still gets its Final before the socket
    // closes. Dropping the senders lets each dispatcher exit once its
    // last in-flight tag is answered.
    for dispatcher in dispatchers {
        let Dispatcher {
            track_tx,
            respond_tx,
            progress_tx,
            handle,
        } = dispatcher;
        drop(track_tx);
        drop(respond_tx);
        drop(progress_tx);
        let _ = handle.join();
    }
    stream.shutdown(SocketShutdown::Both).ok();
    result
}

fn handle_submit(
    submit: SubmitRequest,
    registry: &ModelRegistry,
    governor: &TenantGovernor,
    config: &GatewayConfig,
    status: &GatewayStatus,
    writer: &SharedWriter,
    dispatcher: &Dispatcher,
) {
    let SubmitRequest {
        client_tag,
        class,
        budget_ms,
        want_progress,
        payload,
        // Routing keys steer the sharded front tier; a single gateway is
        // one shard, so the key has already done its job by the time a
        // submit arrives here.
        routing_key: _,
        model,
        tenant,
        // Ring-epoch stamp is observability for the router tier; a
        // gateway ignores it.
        epoch: _,
    } = submit;
    // A zero budget can never be met (and ServiceClass rejects it):
    // answer expired immediately rather than erroring the connection.
    if budget_ms == 0 {
        status.note_final_sent();
        let _ = send(
            writer,
            &Frame::Final {
                client_tag,
                response: wire::WireResponse {
                    predicted: None,
                    confidence: None,
                    stages_executed: 0,
                    expired: true,
                    latency_us: 0,
                    degraded: false,
                },
            },
        );
        return;
    }
    let lease = match admit_submit(config, status, governor, &class, tenant.as_deref()) {
        Ok(lease) => lease,
        Err((retry_after_ms, reason)) => {
            status.note_reject_sent();
            let _ = send(
                writer,
                &Frame::Reject {
                    client_tag,
                    retry_after_ms,
                    reason,
                },
            );
            return;
        }
    };
    // Re-anchor the client's remaining budget on the server clock: the
    // deadline daemon runs against `now + budget`, so client/server
    // clocks never need to agree.
    let service_class = ServiceClass::new(&class, Duration::from_millis(budget_ms));
    let request = InferenceRequest::new(payload, service_class);
    let respond_tx = dispatcher.respond_tx.clone();
    let progress = want_progress.then(|| dispatcher.progress_tx.clone());
    let id = match registry.submit_to(model.as_deref(), request, respond_tx, progress) {
        Ok((id, _model)) => id,
        Err(eugene_serve::RegistryError::UnknownModel(_)) => {
            // Not retryable against the current registry state, so the
            // backoff hint is zero; the lease releases here.
            status.note_reject_sent();
            let _ = send(
                writer,
                &Frame::Reject {
                    client_tag,
                    retry_after_ms: 0,
                    reason: wire::RejectReason::UnknownModel,
                },
            );
            return;
        }
    };
    // The response can already be racing down the funnel; the dispatcher
    // parks it as an orphan until this registration arrives.
    let _ = dispatcher.track_tx.send(TrackRequest {
        id,
        tag: client_tag,
        lease,
    });
}

/// One dispatcher worker: demultiplexes the runtime's shared response and
/// progress funnels back into per-tag wire frames.
///
/// Runtime ordering guarantees every stage report of a request is
/// enqueued before its response, so draining the progress funnel before
/// writing each `Final` preserves the per-tag "all `StageUpdate`s, then
/// the `Final`" wire contract. Registrations can race their own
/// response (the reader submits before it can learn the [`RequestId`]),
/// so unroutable events are parked in orphan maps and flushed as soon as
/// the `TrackRequest` lands.
fn dispatcher_loop(
    track_rx: crossbeam::channel::Receiver<TrackRequest>,
    respond_rx: crossbeam::channel::Receiver<InferenceResponse>,
    progress_rx: crossbeam::channel::Receiver<StageProgress>,
    writer: SharedWriter,
    status: GatewayStatus,
) {
    use crossbeam::channel::{RecvError, TryRecvError};

    struct Tracked {
        tag: u64,
        lease: Lease,
    }

    let mut tracked: HashMap<RequestId, Tracked> = HashMap::new();
    let mut orphan_responses: HashMap<RequestId, InferenceResponse> = HashMap::new();
    let mut orphan_progress: HashMap<RequestId, Vec<StageProgress>> = HashMap::new();
    // Once a write fails the peer is gone: keep draining (to release
    // slots and let the runtime finish) but stop touching the socket.
    let mut writer_alive = true;

    let forward_progress =
        |tag: u64, event: &StageProgress, writer: &SharedWriter, alive: &mut bool| {
            if !*alive {
                return;
            }
            let frame = Frame::StageUpdate {
                client_tag: tag,
                stage: event.stage as u32,
                confidence: event.confidence,
                predicted: event.predicted as u64,
            };
            if send(writer, &frame).is_err() {
                *alive = false;
            }
        };

    macro_rules! drain_progress {
        () => {
            loop {
                match progress_rx.try_recv() {
                    Ok(event) => match tracked.get(&event.request_id) {
                        Some(entry) => {
                            forward_progress(entry.tag, &event, &writer, &mut writer_alive)
                        }
                        None => orphan_progress
                            .entry(event.request_id)
                            .or_default()
                            .push(event),
                    },
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
        };
    }

    macro_rules! finalize {
        ($id:expr, $tag:expr, $response:expr, $lease:expr) => {{
            // Everything this request streamed is already queued (stage
            // reports are enqueued strictly before the response): drain
            // the funnel so its StageUpdates precede its Final.
            drain_progress!();
            if let Some(events) = orphan_progress.remove(&$id) {
                for event in &events {
                    forward_progress($tag, event, &writer, &mut writer_alive);
                }
            }
            if writer_alive {
                status.note_final_sent();
                if send(&writer, &final_frame($tag, $response)).is_err() {
                    writer_alive = false;
                }
            }
            drop($lease); // release the admission reservation(s)
        }};
    }

    macro_rules! register {
        ($req:expr) => {{
            let TrackRequest { id, tag, lease } = $req;
            if let Some(response) = orphan_responses.remove(&id) {
                finalize!(id, tag, response, lease);
            } else {
                if let Some(events) = orphan_progress.remove(&id) {
                    for event in &events {
                        forward_progress(tag, event, &writer, &mut writer_alive);
                    }
                }
                tracked.insert(id, Tracked { tag, lease });
            }
        }};
    }

    macro_rules! route_progress {
        ($event:expr) => {{
            let event = $event;
            match tracked.get(&event.request_id) {
                Some(entry) => forward_progress(entry.tag, &event, &writer, &mut writer_alive),
                None => orphan_progress
                    .entry(event.request_id)
                    .or_default()
                    .push(event),
            }
        }};
    }

    /// What a blocking select round delivered.
    enum Wake {
        Track(Result<TrackRequest, RecvError>),
        Progress(Result<StageProgress, RecvError>),
        Respond(Result<InferenceResponse, RecvError>),
    }

    let mut track_open = true;
    let mut progress_open = true;
    loop {
        // 1. Register new in-flight tags (and finalize any whose response
        //    outran the registration).
        loop {
            match track_rx.try_recv() {
                Ok(req) => register!(req),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    track_open = false;
                    break;
                }
            }
        }

        // 2. Forward queued stage progress for every in-flight tag.
        drain_progress!();

        // The reader is gone and every registered tag is answered: any
        // orphan response left can never be routed (its registration
        // died with the reader), so exit.
        if !track_open && tracked.is_empty() {
            return;
        }

        // 3. Block until the next event on a still-open funnel. Arm order
        //    is priority: registrations, then progress, then responses —
        //    a StageUpdate in the funnel always goes out before the Final
        //    that raced in behind it. A disconnected channel must leave
        //    the select (its arm would fire `Err` forever), so the shape
        //    is chosen by which funnels are still open.
        let wake = match (track_open, progress_open) {
            (true, true) => crossbeam::select! {
                recv(track_rx) -> msg => Wake::Track(msg),
                recv(progress_rx) -> msg => Wake::Progress(msg),
                recv(respond_rx) -> msg => Wake::Respond(msg),
            },
            (true, false) => crossbeam::select! {
                recv(track_rx) -> msg => Wake::Track(msg),
                recv(respond_rx) -> msg => Wake::Respond(msg),
            },
            (false, true) => crossbeam::select! {
                recv(progress_rx) -> msg => Wake::Progress(msg),
                recv(respond_rx) -> msg => Wake::Respond(msg),
            },
            (false, false) => Wake::Respond(respond_rx.recv()),
        };
        match wake {
            Wake::Track(Ok(req)) => register!(req),
            Wake::Track(Err(RecvError)) => track_open = false,
            Wake::Progress(Ok(event)) => route_progress!(event),
            Wake::Progress(Err(RecvError)) => progress_open = false,
            Wake::Respond(Ok(response)) => match tracked.remove(&response.id) {
                Some(Tracked { tag, lease }) => finalize!(response.id, tag, response, lease),
                None => {
                    orphan_responses.insert(response.id, response);
                }
            },
            Wake::Respond(Err(RecvError)) => {
                // All response senders gone: the reader exited (its
                // Dispatcher clone died with it, closing the track
                // channel too) and no submission holds a clone, so
                // nothing is in flight.
                debug_assert!(tracked.is_empty());
                track_open = false;
            }
        }
    }
}

pub(crate) fn final_frame(client_tag: u64, response: InferenceResponse) -> Frame {
    Frame::Final {
        client_tag,
        response: wire::WireResponse {
            predicted: response.predicted.map(|p| p as u64),
            confidence: response.confidence,
            stages_executed: response.stages_executed as u32,
            expired: response.expired,
            latency_us: response.latency.as_micros() as u64,
            degraded: response.degraded,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_sheds_lowest_utility_first() {
        let mut config = GatewayConfig {
            high_water: 10,
            hard_cap: 20,
            ..GatewayConfig::default()
        };
        config.class_utility.insert("premium".to_owned(), 2.0);
        config.class_utility.insert("batch".to_owned(), 0.5);

        // Below high water: everyone admitted.
        assert!(config.admit("batch", 9).is_ok());
        // Mid-overload: batch (utility 0.5 <= 0.5*2.0) shed at pressure
        // 0.25 already, premium survives.
        assert!(config.admit("batch", 13).is_err());
        assert!(config.admit("premium", 13).is_ok());
        // Unlisted classes (utility 1.0) shed once pressure*max crosses 1.
        assert!(config.admit("anon", 13).is_ok());
        assert!(config.admit("anon", 16).is_err());
        // Hard cap: even premium rejected.
        assert!(config.admit("premium", 20).is_err());
    }

    #[test]
    fn retry_after_scales_with_overshoot() {
        let config = GatewayConfig {
            high_water: 10,
            hard_cap: 12,
            ..GatewayConfig::default()
        };
        let near = config.admit("x", 12).unwrap_err();
        let far = config.admit("x", 60).unwrap_err();
        assert!(far > near, "deeper overload asks for a longer backoff");
        assert!(config.admit("x", 10_000).unwrap_err() <= 1_000, "capped");
    }

    #[test]
    fn reservation_is_atomic_under_concurrent_hammering() {
        // 16 threads race reserve/release against hard_cap 8; the CAS
        // admission must never let the gauge exceed the cap.
        let config = Arc::new(GatewayConfig {
            high_water: 8,
            hard_cap: 8,
            ..GatewayConfig::default()
        });
        let status = GatewayStatus::default();
        let admitted = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let config = Arc::clone(&config);
            let status = status.clone();
            let admitted = Arc::clone(&admitted);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    match try_reserve(&config, &status, "x") {
                        Ok(slot) => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                status.in_flight_reserved() <= 8,
                                "reservation gauge blew past the hard cap"
                            );
                            if i % 3 == 0 {
                                std::thread::yield_now();
                            }
                            drop(slot);
                        }
                        Err(retry_after_ms) => assert!(retry_after_ms > 0),
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().expect("hammer thread panicked");
        }
        assert_eq!(status.in_flight_reserved(), 0, "every slot released");
        assert!(status.peak_in_flight() <= 8, "peak bounded by hard cap");
        assert!(
            admitted.load(Ordering::Relaxed) > 0,
            "some reservations must succeed"
        );
    }

    /// Regression for the dispatcher's old 2ms forwarding tick: a
    /// `StageUpdate` sitting in the progress funnel while the dispatcher
    /// waits for responses must go out on the wire immediately (the
    /// select wakes on the send), not on the next poll edge. Fifty
    /// sequential events under the old `recv_timeout(2ms)` loop cost
    /// ~100ms of accumulated tick latency; event-driven they cost well
    /// under a millisecond each.
    #[test]
    fn dispatcher_forwards_progress_without_a_poll_tick() {
        use std::time::Instant;
        const EVENTS: usize = 50;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let writer: SharedWriter = Arc::new(Mutex::new(server_side));

        let (track_tx, track_rx) = crossbeam::channel::unbounded();
        let (respond_tx, respond_rx) = crossbeam::channel::unbounded();
        let (progress_tx, progress_rx) = crossbeam::channel::unbounded();
        let dispatcher_status = GatewayStatus::default();
        let handle = std::thread::spawn(move || {
            dispatcher_loop(track_rx, respond_rx, progress_rx, writer, dispatcher_status)
        });

        let config = GatewayConfig::default();
        let status = GatewayStatus::default();
        let governor = TenantGovernor::new(HashMap::new(), TenantQuota::default());
        let lease = admit_submit(&config, &status, &governor, "test", None).expect("reserve");
        track_tx
            .send(TrackRequest {
                id: 7,
                tag: 42,
                lease,
            })
            .expect("track");

        let mut reader = client;
        reader
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("read timeout");
        let mut buffer = FrameBuffer::new();
        let started = Instant::now();
        for stage in 0..EVENTS {
            progress_tx
                .send(StageProgress {
                    request_id: 7,
                    stage,
                    confidence: 0.5,
                    predicted: 1,
                })
                .expect("progress");
            // Await this event's frame before sending the next, so every
            // forward pays the dispatcher's wakeup latency.
            loop {
                match buffer.poll(&mut reader).expect("read frame") {
                    Some(Frame::StageUpdate {
                        client_tag,
                        stage: got,
                        ..
                    }) => {
                        assert_eq!(client_tag, 42);
                        assert_eq!(got as usize, stage);
                        break;
                    }
                    Some(other) => panic!("unexpected frame {other:?}"),
                    None => {}
                }
            }
        }
        let elapsed = started.elapsed();

        respond_tx
            .send(InferenceResponse {
                id: 7,
                predicted: Some(1),
                confidence: Some(0.9),
                stages_executed: EVENTS,
                expired: false,
                degraded: false,
                latency: Duration::from_millis(1),
            })
            .expect("respond");
        drop(track_tx);
        drop(respond_tx);
        drop(progress_tx);
        handle.join().expect("dispatcher exits clean");
        assert_eq!(status.in_flight_reserved(), 0, "slot released on Final");

        assert!(
            elapsed < Duration::from_millis(25),
            "{EVENTS} sequential StageUpdates took {elapsed:?} — the \
             dispatcher is forwarding on a poll tick, not on the event"
        );
    }

    #[test]
    fn transient_accept_errors_are_classified() {
        for kind in [
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::Interrupted,
            io::ErrorKind::TimedOut,
        ] {
            assert!(is_transient_accept_error(&io::Error::new(kind, "t")));
        }
        // EMFILE (24): fd exhaustion recovers once connections close.
        assert!(is_transient_accept_error(&io::Error::from_raw_os_error(24)));
        // EBADF (9): the listener itself is broken — terminal.
        assert!(!is_transient_accept_error(&io::Error::from_raw_os_error(9)));
        assert!(!is_transient_accept_error(&io::Error::new(
            io::ErrorKind::InvalidInput,
            "t"
        )));
    }
}
