//! Seeded open-loop Poisson load generator for a [`crate::server::Gateway`].
//!
//! The generator models an *open* system: arrival times are drawn from an
//! exponential inter-arrival distribution at a fixed aggregate rate and
//! pre-assigned to connection workers, so a slow server cannot slow the
//! offered load down (unlike closed-loop benchmarks, which hide queueing
//! collapse). Everything is derived from a single seed, so runs are
//! reproducible.
//!
//! Two connection models ([`LoadgenMode`]):
//!
//! - [`LoadgenMode::PerConnection`] — each worker owns one serial
//!   [`crate::client::EugeneClient`] connection (one request in flight per
//!   socket), firing its share of the schedule;
//! - [`LoadgenMode::Multiplexed`] — `connections` shared
//!   [`crate::client::MultiplexClient`]s pipeline tagged requests, with
//!   `concurrency` submitter threads dealt round-robin across them, so a
//!   handful of sockets carry the whole offered load.

use crate::client::{ClientConfig, ClientError, EugeneClient, MultiplexClient, SubmitOptions};
use crate::wire::RejectReason;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One service class in the offered mix.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Service-class name sent with each submit.
    pub name: String,
    /// End-to-end budget per request, in milliseconds.
    pub budget_ms: u64,
    /// Relative share of the traffic mix (weights need not sum to 1).
    pub weight: f64,
    /// Number of f32 elements in each request payload.
    pub payload_len: usize,
}

/// One tenant identity in the offered mix: requests carry its name on
/// the wire (per-tenant admission quotas apply) and the report breaks
/// results down per tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name sent with each submit.
    pub name: String,
    /// Relative share of the offered traffic (weights need not sum to 1).
    pub weight: f64,
}

/// How the offered load maps onto TCP connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadgenMode {
    /// One serial [`EugeneClient`] per worker thread: `connections`
    /// sockets, one request in flight on each.
    PerConnection,
    /// `connections` shared [`MultiplexClient`]s pipelining tagged
    /// requests, driven by `concurrency` submitter threads dealt
    /// round-robin across the clients. In-flight depth per socket is
    /// roughly `concurrency / connections`.
    Multiplexed { concurrency: usize },
}

/// Full description of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Gateway address, e.g. `"127.0.0.1:4096"`.
    pub addr: String,
    /// Concurrent TCP connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub total_requests: usize,
    /// Aggregate arrival rate in requests per second.
    pub rate_hz: f64,
    /// Traffic mix; must be non-empty.
    pub classes: Vec<ClassSpec>,
    /// Master seed for arrivals, class choice, payloads, and client jitter.
    pub seed: u64,
    /// Client policy applied to every worker.
    pub client: ClientConfig,
    /// Connection model (serial per-connection vs multiplexed).
    pub mode: LoadgenMode,
    /// Multi-shard mode: when `Some(k)`, every request carries a routing
    /// key drawn uniformly from `0..k`, so a sharded front tier spreads
    /// the offered load across its ring. `None` sends no keys (a single
    /// gateway, or router fallback to per-connection keys).
    pub keyspace: Option<u64>,
    /// Tenant mix: when non-empty, each request is attributed to one
    /// tenant by weight and carries its name on the wire. Empty sends
    /// anonymous (pre-tenant) submits.
    pub tenants: Vec<TenantSpec>,
    /// Extra client-side patience beyond each class's wire budget. The
    /// budget sent on the wire (the server's deadline) is unchanged; the
    /// client just keeps listening this much longer, so an answer the
    /// server produces *at* the deadline — an anytime degradation, say —
    /// still gets counted instead of booking as `deadline_exhausted`.
    /// Zero reproduces the strict wait-exactly-the-budget behavior.
    pub wait_grace: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            connections: 4,
            total_requests: 256,
            rate_hz: 200.0,
            classes: vec![ClassSpec {
                name: "default".to_owned(),
                budget_ms: 100,
                weight: 1.0,
                payload_len: 16,
            }],
            seed: 0,
            client: ClientConfig::default(),
            mode: LoadgenMode::PerConnection,
            keyspace: None,
            tenants: Vec::new(),
            wait_grace: Duration::ZERO,
        }
    }
}

/// Aggregated results of one run, serializable to JSON for `results/`.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Requests offered.
    pub requests: u64,
    /// Requests answered with a final (non-expired) prediction.
    pub completed: u64,
    /// Requests shed by gateway admission control.
    pub rejected: u64,
    /// Slice of `rejected` carrying `RejectReason::ShardLost`: requests
    /// the sharded front tier could not place on any shard. Zero under
    /// transparent failover — the replica-fault suites gate on it.
    pub rejected_shard_lost: u64,
    /// Requests answered but killed by the server's deadline daemon.
    pub expired: u64,
    /// Requests answered with a degraded (anytime early-exit) result:
    /// usable, counted in `completed`, but shallower than asked.
    pub degraded: u64,
    /// Final answers that carried zero executed stages (no usable
    /// prediction at all — starvation kills).
    pub zero_stage_finals: u64,
    /// Requests whose client-side budget ran out before any answer.
    pub deadline_exhausted: u64,
    /// Requests lost to wire/connection errors.
    pub errors: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
    /// Completed answers (including expired) per second.
    pub throughput_rps: f64,
    /// Round-trip latency percentiles over answered requests, ms.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// rejected / requests.
    pub reject_rate: f64,
    /// (expired + deadline_exhausted) / requests.
    pub deadline_miss_rate: f64,
    /// Mean stages executed per answered request.
    pub mean_stages: f64,
    /// Summed confidence of every non-expired answer — the run's
    /// delivered utility under the paper's imprecise-computation model
    /// (a miss delivers zero, a degraded answer its partial confidence).
    pub aggregate_utility: f64,
    /// `aggregate_utility / elapsed_s`: delivered utility per second,
    /// the curve the overload benchmark compares across policies.
    pub utility_per_s: f64,
    /// Per-tenant breakdown (empty unless `LoadgenConfig::tenants` was
    /// set), keyed by tenant name.
    pub per_tenant: BTreeMap<String, TenantLoadReport>,
}

/// One tenant's slice of a [`LoadReport`].
#[derive(Debug, Clone, Serialize)]
pub struct TenantLoadReport {
    pub requests: u64,
    pub completed: u64,
    pub rejected: u64,
    pub expired: u64,
    pub degraded: u64,
    pub deadline_exhausted: u64,
    pub errors: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
}

impl LoadReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("LoadReport serializes infallibly")
    }

    /// Writes the JSON report to `path`, creating parent directories.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// One request in the pre-generated schedule.
struct PlannedRequest {
    /// Offset from run start at which to fire.
    at: Duration,
    class: usize,
    payload: Vec<f32>,
    /// Sharding routing key (drawn when `LoadgenConfig::keyspace` is set).
    key: Option<u64>,
    /// Index into `LoadgenConfig::tenants` (drawn when non-empty).
    tenant: Option<usize>,
}

/// One answered request as the tally books it.
struct Answer {
    latency_ms: f64,
    expired: bool,
    degraded: bool,
    stages: u32,
    confidence: Option<f32>,
}

/// One tally bucket: the run total and each tenant row share this shape.
#[derive(Default, Clone)]
struct Tally {
    requests: u64,
    completed: u64,
    rejected: u64,
    rejected_shard_lost: u64,
    expired: u64,
    degraded: u64,
    zero_stage_finals: u64,
    deadline_exhausted: u64,
    errors: u64,
    stages_sum: u64,
    utility_sum: f64,
    latencies_ms: Vec<f64>,
}

impl Tally {
    /// Books one request outcome: `Ok` for an answered request, `Err`
    /// for the failure classes.
    fn note(&mut self, outcome: &Result<Answer, ClientError>) {
        self.requests += 1;
        match outcome {
            Ok(answer) => {
                self.latencies_ms.push(answer.latency_ms);
                self.stages_sum += u64::from(answer.stages);
                if answer.stages == 0 {
                    self.zero_stage_finals += 1;
                }
                if answer.expired {
                    self.expired += 1;
                } else {
                    self.completed += 1;
                    self.utility_sum += f64::from(answer.confidence.unwrap_or(0.0));
                    if answer.degraded {
                        self.degraded += 1;
                    }
                }
            }
            Err(ClientError::Rejected { reason, .. }) => {
                self.rejected += 1;
                if *reason == RejectReason::ShardLost {
                    self.rejected_shard_lost += 1;
                }
            }
            Err(ClientError::DeadlineExhausted) => self.deadline_exhausted += 1,
            Err(ClientError::Wire(_)) => self.errors += 1,
        }
    }

    fn merge(&mut self, other: Tally) {
        self.requests += other.requests;
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.rejected_shard_lost += other.rejected_shard_lost;
        self.expired += other.expired;
        self.degraded += other.degraded;
        self.zero_stage_finals += other.zero_stage_finals;
        self.deadline_exhausted += other.deadline_exhausted;
        self.errors += other.errors;
        self.stages_sum += other.stages_sum;
        self.utility_sum += other.utility_sum;
        self.latencies_ms.extend(other.latencies_ms);
    }
}

/// Per-worker tally, merged after join.
struct WorkerTally {
    total: Tally,
    /// One row per configured tenant, indexed like `LoadgenConfig::tenants`.
    tenants: Vec<Tally>,
}

impl WorkerTally {
    fn new(num_tenants: usize) -> Self {
        Self {
            total: Tally::default(),
            tenants: vec![Tally::default(); num_tenants],
        }
    }

    fn note(&mut self, tenant: Option<usize>, outcome: &Result<Answer, ClientError>) {
        self.total.note(outcome);
        if let Some(i) = tenant {
            self.tenants[i].note(outcome);
        }
    }
}

/// Runs the configured load against the gateway and reports aggregates.
///
/// Arrivals follow a Poisson process at `rate_hz`: inter-arrival gaps are
/// `-ln(U)/rate` with `U` uniform on (0, 1]. The schedule is generated up
/// front from the seed and dealt round-robin to `connections` workers, so
/// the offered load is independent of server behavior.
pub fn run(config: &LoadgenConfig) -> LoadReport {
    assert!(
        !config.classes.is_empty(),
        "loadgen needs at least one class"
    );
    assert!(
        config.connections > 0,
        "loadgen needs at least one connection"
    );
    assert!(config.rate_hz > 0.0, "arrival rate must be positive");
    let workers = match config.mode {
        LoadgenMode::PerConnection => config.connections,
        LoadgenMode::Multiplexed { concurrency } => {
            assert!(concurrency > 0, "multiplexed mode needs concurrency > 0");
            concurrency
        }
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let total_weight: f64 = config.classes.iter().map(|c| c.weight).sum();
    assert!(
        total_weight > 0.0,
        "class weights must sum to a positive value"
    );

    let tenant_weights: Vec<f64> = config.tenants.iter().map(|t| t.weight).collect();
    let tenant_weight: f64 = tenant_weights.iter().sum();
    assert!(
        config.tenants.is_empty() || tenant_weight > 0.0,
        "tenant weights must sum to a positive value"
    );

    // Pre-generate the whole schedule so workers only sleep and send.
    let mut schedules: Vec<Vec<PlannedRequest>> = (0..workers).map(|_| Vec::new()).collect();
    let mut clock = Duration::ZERO;
    for i in 0..config.total_requests {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        clock += Duration::from_secs_f64(-u.ln() / config.rate_hz);
        let class = weighted_choice(&config.classes, total_weight, rng.gen_range(0.0..1.0));
        let payload: Vec<f32> = (0..config.classes[class].payload_len)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let key = config.keyspace.map(|k| rng.gen_range(0..k.max(1)));
        let tenant = (!config.tenants.is_empty())
            .then(|| weighted_index(&tenant_weights, tenant_weight, rng.gen_range(0.0..1.0)));
        schedules[i % workers].push(PlannedRequest {
            at: clock,
            class,
            payload,
            key,
            tenant,
        });
    }

    // Multiplexed mode shares `connections` pipelined clients across all
    // submitter threads; per-connection mode gives each worker its own
    // serial client inside the worker loop.
    let mux_clients: Vec<Arc<MultiplexClient>> = match config.mode {
        LoadgenMode::PerConnection => Vec::new(),
        LoadgenMode::Multiplexed { .. } => (0..config.connections)
            .filter_map(|i| {
                let mut client_config = config.client.clone();
                client_config.seed = config
                    .seed
                    .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(i as u64 + 1));
                MultiplexClient::new(&config.addr, client_config)
                    .ok()
                    .map(Arc::new)
            })
            .collect(),
    };

    let started = Instant::now();
    let mut handles = Vec::with_capacity(workers);
    for (worker, schedule) in schedules.into_iter().enumerate() {
        let addr = config.addr.clone();
        let classes = config.classes.clone();
        let tenants = config.tenants.clone();
        let wait_grace = config.wait_grace;
        let mut client_config = config.client.clone();
        // Distinct jitter stream per worker, still derived from the seed.
        client_config.seed = config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker as u64 + 1));
        let mux = if mux_clients.is_empty() {
            None
        } else {
            Some(Arc::clone(&mux_clients[worker % mux_clients.len()]))
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("eugene-loadgen-{worker}"))
                .spawn(move || match mux {
                    Some(client) => {
                        mux_worker_loop(&client, &classes, &tenants, schedule, started, wait_grace)
                    }
                    None => worker_loop(
                        &addr,
                        client_config,
                        &classes,
                        &tenants,
                        schedule,
                        started,
                        wait_grace,
                    ),
                })
                .expect("spawn loadgen worker"),
        );
    }

    let mut tally = WorkerTally::new(config.tenants.len());
    for handle in handles {
        let part = handle.join().expect("loadgen worker panicked");
        tally.total.merge(part.total);
        for (row, part_row) in tally.tenants.iter_mut().zip(part.tenants) {
            row.merge(part_row);
        }
    }
    let elapsed = started.elapsed();

    let per_tenant = config
        .tenants
        .iter()
        .zip(tally.tenants.iter_mut())
        .map(|(spec, row)| {
            row.latencies_ms
                .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            (
                spec.name.clone(),
                TenantLoadReport {
                    requests: row.requests,
                    completed: row.completed,
                    rejected: row.rejected,
                    expired: row.expired,
                    degraded: row.degraded,
                    deadline_exhausted: row.deadline_exhausted,
                    errors: row.errors,
                    p50_ms: percentile(&row.latencies_ms, 0.50),
                    p99_ms: percentile(&row.latencies_ms, 0.99),
                },
            )
        })
        .collect();

    let total = &mut tally.total;
    total
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let requests = config.total_requests as u64;
    let answered = total.completed + total.expired;
    LoadReport {
        requests,
        completed: total.completed,
        rejected: total.rejected,
        rejected_shard_lost: total.rejected_shard_lost,
        expired: total.expired,
        degraded: total.degraded,
        zero_stage_finals: total.zero_stage_finals,
        deadline_exhausted: total.deadline_exhausted,
        errors: total.errors,
        elapsed_s: elapsed.as_secs_f64(),
        throughput_rps: answered as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&total.latencies_ms, 0.50),
        p95_ms: percentile(&total.latencies_ms, 0.95),
        p99_ms: percentile(&total.latencies_ms, 0.99),
        reject_rate: total.rejected as f64 / requests.max(1) as f64,
        deadline_miss_rate: (total.expired + total.deadline_exhausted) as f64
            / requests.max(1) as f64,
        mean_stages: total.stages_sum as f64 / answered.max(1) as f64,
        aggregate_utility: total.utility_sum,
        utility_per_s: total.utility_sum / elapsed.as_secs_f64().max(1e-9),
        per_tenant,
    }
}

/// The wire addressing for one planned request. With a grace window, the
/// server's deadline is pinned to the class budget while the client waits
/// `budget + grace`, so answers produced at the deadline still land.
fn submit_options(
    planned: &PlannedRequest,
    tenants: &[TenantSpec],
    spec: &ClassSpec,
    wait_grace: Duration,
) -> SubmitOptions {
    SubmitOptions {
        routing_key: planned.key,
        model: None,
        tenant: planned.tenant.map(|i| tenants[i].name.clone()),
        wire_budget: (!wait_grace.is_zero()).then(|| Duration::from_millis(spec.budget_ms)),
    }
}

fn worker_loop(
    addr: &str,
    client_config: ClientConfig,
    classes: &[ClassSpec],
    tenants: &[TenantSpec],
    schedule: Vec<PlannedRequest>,
    started: Instant,
    wait_grace: Duration,
) -> WorkerTally {
    let mut tally = WorkerTally::new(tenants.len());
    let mut client = match EugeneClient::new(addr, client_config) {
        Ok(client) => client,
        Err(_) => {
            tally.total.errors = schedule.len() as u64;
            tally.total.requests = schedule.len() as u64;
            return tally;
        }
    };
    for planned in schedule {
        // Open loop: fire at the scheduled instant regardless of how the
        // previous request fared.
        let now = started.elapsed();
        if planned.at > now {
            std::thread::sleep(planned.at - now);
        }
        let spec = &classes[planned.class];
        let options = submit_options(&planned, tenants, spec, wait_grace);
        let sent = Instant::now();
        let outcome = client
            .infer_with(
                &spec.name,
                &planned.payload,
                Duration::from_millis(spec.budget_ms) + wait_grace,
                &options,
            )
            .map(|outcome| Answer {
                latency_ms: sent.elapsed().as_secs_f64() * 1e3,
                expired: outcome.expired,
                degraded: outcome.degraded,
                stages: outcome.stages_executed,
                confidence: outcome.confidence,
            });
        tally.note(planned.tenant, &outcome);
    }
    tally
}

/// Multiplexed submitter: same open-loop schedule, but requests go
/// through a shared pipelined client, so many submitters interleave their
/// in-flight requests on the same socket.
fn mux_worker_loop(
    client: &MultiplexClient,
    classes: &[ClassSpec],
    tenants: &[TenantSpec],
    schedule: Vec<PlannedRequest>,
    started: Instant,
    wait_grace: Duration,
) -> WorkerTally {
    let mut tally = WorkerTally::new(tenants.len());
    for planned in schedule {
        let now = started.elapsed();
        if planned.at > now {
            std::thread::sleep(planned.at - now);
        }
        let spec = &classes[planned.class];
        let options = submit_options(&planned, tenants, spec, wait_grace);
        let sent = Instant::now();
        let outcome = client
            .infer_with(
                &spec.name,
                &planned.payload,
                Duration::from_millis(spec.budget_ms) + wait_grace,
                &options,
            )
            .map(|outcome| Answer {
                latency_ms: sent.elapsed().as_secs_f64() * 1e3,
                expired: outcome.expired,
                degraded: outcome.degraded,
                stages: outcome.stages_executed,
                confidence: outcome.confidence,
            });
        tally.note(planned.tenant, &outcome);
    }
    tally
}

/// Picks a class index from cumulative weights given `u` in [0, 1).
fn weighted_choice(classes: &[ClassSpec], total_weight: f64, u: f64) -> usize {
    let mut cut = u * total_weight;
    for (i, class) in classes.iter().enumerate() {
        cut -= class.weight;
        if cut < 0.0 {
            return i;
        }
    }
    classes.len() - 1
}

/// Picks an index from a raw weight slice given `u` in [0, 1).
fn weighted_index(weights: &[f64], total_weight: f64, u: f64) -> usize {
    let mut cut = u * total_weight;
    for (i, weight) in weights.iter().enumerate() {
        cut -= weight;
        if cut < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Nearest-rank percentile over a sorted slice; 0.0 when empty.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 * q).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, weight: f64) -> ClassSpec {
        ClassSpec {
            name: name.to_owned(),
            budget_ms: 50,
            weight,
            payload_len: 4,
        }
    }

    #[test]
    fn weighted_choice_partitions_the_unit_interval() {
        let classes = vec![spec("a", 1.0), spec("b", 3.0)];
        assert_eq!(weighted_choice(&classes, 4.0, 0.0), 0);
        assert_eq!(weighted_choice(&classes, 4.0, 0.24), 0);
        assert_eq!(weighted_choice(&classes, 4.0, 0.26), 1);
        assert_eq!(weighted_choice(&classes, 4.0, 0.999), 1);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    fn answer(latency_ms: f64, expired: bool, degraded: bool, stages: u32) -> Answer {
        Answer {
            latency_ms,
            expired,
            degraded,
            stages,
            confidence: (stages > 0).then_some(0.5),
        }
    }

    #[test]
    fn tenant_rows_book_outcomes_alongside_the_total() {
        let mut tally = WorkerTally::new(2);
        tally.note(Some(0), &Ok(answer(5.0, false, false, 3)));
        tally.note(
            Some(1),
            &Err(ClientError::Rejected {
                retry_after: Duration::from_millis(10),
                reason: crate::wire::RejectReason::TenantOverQuota,
            }),
        );
        tally.note(None, &Ok(answer(7.0, true, false, 0)));
        assert_eq!(tally.total.requests, 3);
        assert_eq!(tally.total.completed, 1);
        assert_eq!(tally.total.rejected, 1);
        assert_eq!(tally.total.expired, 1);
        assert_eq!(tally.tenants[0].completed, 1);
        assert_eq!(tally.tenants[0].requests, 1);
        assert_eq!(tally.tenants[1].rejected, 1);
        assert_eq!(tally.tenants[1].completed, 0);
    }

    #[test]
    fn tally_books_utility_degradation_and_zero_stage_finals() {
        let mut tally = Tally::default();
        tally.note(&Ok(answer(4.0, false, false, 3))); // full answer
        tally.note(&Ok(answer(2.0, false, true, 1))); // degraded answer
        tally.note(&Ok(answer(9.0, true, false, 0))); // starvation kill
        assert_eq!(tally.completed, 2);
        assert_eq!(tally.degraded, 1);
        assert_eq!(tally.expired, 1);
        assert_eq!(tally.zero_stage_finals, 1);
        assert_eq!(tally.stages_sum, 4);
        // Utility sums non-expired confidences only: 0.5 + 0.5.
        assert!((tally.utility_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_index_partitions_the_unit_interval() {
        let weights = [1.0, 3.0];
        assert_eq!(weighted_index(&weights, 4.0, 0.0), 0);
        assert_eq!(weighted_index(&weights, 4.0, 0.24), 0);
        assert_eq!(weighted_index(&weights, 4.0, 0.26), 1);
        assert_eq!(weighted_index(&weights, 4.0, 0.999), 1);
    }

    #[test]
    fn schedule_generation_is_deterministic() {
        let config = LoadgenConfig {
            total_requests: 32,
            classes: vec![spec("a", 1.0), spec("b", 1.0)],
            seed: 42,
            ..LoadgenConfig::default()
        };
        // Regenerate the schedule twice through the public seed and check
        // the class sequence matches: run() derives everything from seed.
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let total: f64 = config.classes.iter().map(|c| c.weight).sum();
            (0..config.total_requests)
                .map(|_| {
                    let _gap: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let class = weighted_choice(&config.classes, total, rng.gen_range(0.0..1.0));
                    for _ in 0..config.classes[class].payload_len {
                        let _: f32 = rng.gen_range(-1.0f32..1.0);
                    }
                    class
                })
                .collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43), "different seeds should diverge");
    }
}
