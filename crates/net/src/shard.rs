//! Sharded front tier: one router socket, N [`Gateway`] shards with
//! replica groups.
//!
//! A [`ShardRouter`] owns N gateway shards (each wrapping its own
//! [`ServingRuntime`]) and exposes the exact same wire protocol as a
//! single gateway, so existing [`crate::client::EugeneClient`] /
//! [`crate::client::MultiplexClient`] users work unchanged. Every
//! [`Frame::Submit`] is steered by a consistent-hash ring
//! ([`HashRing`]) over the request's routing key — the client-provided
//! [`crate::wire::SubmitRequest::routing_key`] when present, a
//! per-connection key otherwise — so related requests stick to one shard
//! while the keyspace spreads evenly across all of them.
//!
//! # Replica groups and failure semantics
//!
//! Every keyspace range has a *replica group*: the ring owner (primary)
//! plus the next distinct shards walking the ring
//! ([`HashRing::route_replicas`]). The first successor is the range's
//! warm standby — the shard that inherits the range the instant the
//! primary leaves the ring, because consistent hashing hands a removed
//! member's keys to exactly its ring successors.
//!
//! A probe thread watches each shard's accept health
//! ([`GatewayStatus::accept_failed`], which also covers a poisoned
//! readiness reactor). When a shard dies — probe detection, a failed
//! dial/write, or an explicit [`ShardRouter::kill_shard`] — the router
//! removes it from the ring and severs its proxy connections. What
//! happens to the requests in flight on it is the connection's
//! [`FailoverPolicy`]:
//!
//! - [`FailoverPolicy::Replay`] (default): every in-flight submit is
//!   *replayed* to the key's new ring owner — the warm standby — and the
//!   client sees a normal `Final`, never an error. A per-connection
//!   tag-ownership table guarantees exactly-once: only the path that
//!   *claims* a tag (removes it from the table) may answer it, so a
//!   replayed request is never answered twice even when the original
//!   shard's answer races the failover.
//! - [`FailoverPolicy::Reject`]: the pre-replication contract — each
//!   in-flight tag is answered with a well-defined [`Frame::Reject`]
//!   carrying [`RejectReason::ShardLost`] (never a hang, never a
//!   fabricated `Final`), counted exactly once on the router.
//!
//! # Live elasticity
//!
//! [`ShardRouter::add_shard`] and [`ShardRouter::remove_shard`] resize
//! the tier without restarting it. Adding a shard publishes its virtual
//! nodes only after the gateway proves accept-healthy, then opens a
//! *migration window* ([`ReplicaConfig::migration_window`]): while it is
//! open, a dial failure against the newcomer falls back to the next
//! replica — the previous owner of the very same range — instead of
//! declaring the shard dead, so both shards serve the moving ranges
//! (double-routing) until the window closes. Removing a shard is a
//! graceful drain: its ranges leave the ring first (epoch bump), its
//! gateway keeps serving until in-flight work reaches zero, then shuts
//! down — zero client-visible loss. [`ShardRouter::revive_shard`]
//! re-inserts a killed shard's virtual nodes at the exact same points
//! (restoring the prior assignment) and likewise waits for accept
//! health before publishing the ring update.
//!
//! Every ring mutation bumps a monotonically increasing *epoch*
//! ([`ShardRouter::ring_epoch`]), stamped on each proxied submit
//! ([`crate::wire::SubmitRequest::epoch`]) so operators can correlate a
//! replayed request with the membership change that caused it.
//!
//! An optional load-aware rebalancer ([`RebalanceConfig`]) samples
//! per-shard completion rates and moves virtual nodes from the hottest
//! shard to the coldest when the spread exceeds a threshold, narrowing
//! per-shard rps spread under skewed keyspaces.

use crate::reactor::{self, Interest, Poller};
use crate::server::{Gateway, GatewayConfig, GatewayStatus};
use crate::tenant::TenantGovernor;
use crate::wire::{self, Frame, FrameBuffer, RejectReason, WireError, PROTOCOL_VERSION};
use eugene_serve::{ModelRegistry, RuntimeStats, ServingRuntime, StatsSnapshot};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer used for
/// both ring points and key hashes (deterministic across runs and
/// platforms, unlike `std`'s `RandomState`).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Consistent-hash ring with virtual nodes and per-shard weights.
///
/// Each member shard owns a number of points on a `u64` ring (its
/// *weight*, defaulting to `virtual_nodes`); a key routes to the owner of
/// the first point at or after its hash (wrapping). Point positions
/// depend only on `(seed, shard, vnode)` — never on insertion order — so
/// membership changes are *minimal*: removing a shard moves only the keys
/// it owned, and re-inserting it restores the exact prior assignment.
/// Weights persist across remove/insert for the same reason: a revived
/// shard comes back at exactly the points the rebalancer left it with.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    virtual_nodes: usize,
    /// Sorted `(point_hash, shard)` pairs; ties break by shard index so
    /// the order is fully deterministic.
    points: Vec<(u64, usize)>,
    members: Vec<usize>,
    /// Per-shard virtual-node counts, kept across `remove` so a
    /// re-`insert` restores the shard's exact prior footprint.
    weights: HashMap<usize, usize>,
}

impl HashRing {
    /// An empty ring. `virtual_nodes` is clamped to at least 1.
    pub fn new(seed: u64, virtual_nodes: usize) -> Self {
        Self {
            seed,
            virtual_nodes: virtual_nodes.max(1),
            points: Vec::new(),
            members: Vec::new(),
            weights: HashMap::new(),
        }
    }

    fn point_hash(&self, shard: usize, vnode: usize) -> u64 {
        splitmix64(self.seed ^ splitmix64(((shard as u64) << 32) | vnode as u64))
    }

    fn key_hash(&self, key: u64) -> u64 {
        // A distinct stream from point hashes (the leading constant), so
        // keys never collide with points systematically.
        splitmix64(self.seed ^ key ^ 0xA5A5_5A5A_F0F0_0F0F)
    }

    /// Adds `shard`'s virtual nodes; no-op if already a member.
    pub fn insert(&mut self, shard: usize) {
        if self.members.contains(&shard) {
            return;
        }
        self.members.push(shard);
        self.members.sort_unstable();
        for vnode in 0..self.vnodes_of(shard) {
            self.points.push((self.point_hash(shard, vnode), shard));
        }
        self.points.sort_unstable();
    }

    /// Removes `shard`'s virtual nodes; no-op if not a member. The
    /// shard's weight is retained, so a later `insert` restores its
    /// exact prior points.
    pub fn remove(&mut self, shard: usize) {
        self.members.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Whether `shard` is currently on the ring.
    pub fn contains(&self, shard: usize) -> bool {
        self.members.contains(&shard)
    }

    /// Current members, ascending.
    pub fn shards(&self) -> &[usize] {
        &self.members
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The number of virtual nodes `shard` owns (or would own on
    /// insert): its explicit weight, or the ring default.
    pub fn vnodes_of(&self, shard: usize) -> usize {
        self.weights
            .get(&shard)
            .copied()
            .unwrap_or(self.virtual_nodes)
    }

    /// Sets `shard`'s virtual-node count (clamped to at least 1),
    /// rebuilding its points if it is a member. Only the re-weighted
    /// shard's keyspace share changes; points of other shards stay
    /// exactly where they were.
    pub fn set_vnodes(&mut self, shard: usize, count: usize) {
        let count = count.max(1);
        self.weights.insert(shard, count);
        if self.members.contains(&shard) {
            self.points.retain(|&(_, s)| s != shard);
            for vnode in 0..count {
                self.points.push((self.point_hash(shard, vnode), shard));
            }
            self.points.sort_unstable();
        }
    }

    /// The shard owning `key`, or `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = self.key_hash(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[i % self.points.len()];
        Some(shard)
    }

    /// The first `n` *distinct* shards walking the ring from `key`'s
    /// hash: `[0]` is the owner ([`HashRing::route`]), `[1]` is the
    /// shard that would inherit the key if the owner left the ring (the
    /// warm standby), and so on. Returns fewer than `n` when the ring
    /// has fewer members.
    pub fn route_replicas(&self, key: u64, n: usize) -> Vec<usize> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let want = n.min(self.members.len());
        let h = self.key_hash(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

/// What a router connection does with requests in flight on a shard that
/// dies under them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailoverPolicy {
    /// Transparently replay each in-flight submit to the key's new ring
    /// owner (the warm standby). The client sees a normal answer —
    /// failover costs latency, not correctness.
    #[default]
    Replay,
    /// The pre-replication contract: answer each in-flight tag with a
    /// [`RejectReason::ShardLost`] reject and let the client retry on a
    /// fresh session.
    Reject,
}

/// Replication policy for a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Replica-group size per keyspace range: the primary plus
    /// `replicas - 1` ring successors considered as failover/fallback
    /// targets. Clamped to at least 2 (primary + warm standby) wherever
    /// it is used.
    pub replicas: usize,
    /// What to do with in-flight requests when their shard dies.
    pub failover: FailoverPolicy,
    /// Double-routing window opened by [`ShardRouter::add_shard`]:
    /// while it lasts, a dial failure against the new shard falls back
    /// to the range's previous owner instead of marking the newcomer
    /// dead, so the migrating ranges always have >= 1 serving owner.
    pub migration_window: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            failover: FailoverPolicy::Replay,
            migration_window: Duration::from_millis(250),
        }
    }
}

/// Load-aware virtual-node rebalancing policy; `None` in
/// [`ShardConfig::rebalance`] disables the thread entirely.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Sampling interval: each tick diffs per-shard completion counters
    /// against the previous tick.
    pub interval: Duration,
    /// Minimum completions across all shards in one interval before the
    /// sample is trusted (idle tiers never rebalance).
    pub min_samples: u64,
    /// Trigger threshold: rebalance when the hottest shard's completion
    /// delta exceeds `max_spread` times the coldest's.
    pub max_spread: f64,
    /// Virtual nodes moved from hottest to coldest per rebalance.
    pub step: usize,
    /// Floor on any shard's virtual-node count: a hot shard is never
    /// drained below this, so every shard always owns keyspace.
    pub min_vnodes: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(200),
            min_samples: 64,
            max_spread: 1.5,
            step: 8,
            min_vnodes: 8,
        }
    }
}

/// Policy for a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Router bind address; port 0 picks a free port.
    pub addr: String,
    /// Virtual nodes per shard on the ring: more smooths the key
    /// distribution, at `O(n log n)` rebuild cost on membership change.
    pub virtual_nodes: usize,
    /// Ring seed: routers sharing a seed (and shard count) agree on the
    /// full key→shard assignment.
    pub seed: u64,
    /// How often the health probe re-checks each shard's accept health.
    pub probe_interval: Duration,
    /// Read-poll granularity on router sockets (client and upstream):
    /// bounds how long threads take to observe shutdown/severing.
    pub read_poll: Duration,
    /// `retry_after_ms` hint carried by synthesized `ShardLost` rejects:
    /// a retry opens a fresh session, which re-admits onto survivors.
    pub lost_retry_ms: u64,
    /// Replication and failover policy.
    pub replica: ReplicaConfig,
    /// Load-aware virtual-node rebalancing; `None` (the default) keeps
    /// the ring assignment static.
    pub rebalance: Option<RebalanceConfig>,
    /// Template for each shard's gateway; `addr` is overridden with a
    /// fresh loopback port per shard.
    pub gateway: GatewayConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            virtual_nodes: 64,
            seed: 0,
            probe_interval: Duration::from_millis(25),
            read_poll: Duration::from_millis(10),
            lost_retry_ms: 25,
            replica: ReplicaConfig::default(),
            rebalance: None,
            gateway: GatewayConfig::default(),
        }
    }
}

/// Owner sentinel for a tag not yet assigned to any upstream.
const NO_SHARD: usize = usize::MAX;

/// One in-flight request as tracked by its client connection.
struct TagEntry {
    /// The submit as received, retained so a failover can replay it.
    submit: wire::SubmitRequest,
    /// The routing key the submit was steered by.
    key: u64,
    /// Current owner: which shard (and which generation of it) the
    /// request is in flight on. Only the owning upstream's reader may
    /// claim the tag and answer the client.
    shard: usize,
    generation: u64,
    /// Routing attempts spent (dials and writes both count); bounded by
    /// [`SUBMIT_REROUTE_LIMIT`] before the router gives up.
    attempts: usize,
    /// Set when the owner died and the tag is queued for replay; a
    /// parked tag still claims normally if the old shard's answer
    /// already arrived, which makes the queued replay a no-op.
    parked: bool,
}

/// Per-client-connection tag-ownership table: the single source of truth
/// for "who answers this tag". Every terminal answer to the client —
/// a forwarded `Final`/`Reject`, a failover reject, or a synthesized
/// `ShardLost` — must first *claim* the tag (remove it here); whoever
/// claims it answers, everyone else drops. That makes answering
/// structurally exactly-once even when a shard's real answer races its
/// death.
#[derive(Default)]
struct TagTable {
    tags: Mutex<HashMap<u64, TagEntry>>,
}

impl TagTable {
    /// Registers a fresh submit before any routing attempt, so an answer
    /// (however fast) always finds its owner.
    fn begin(&self, key: u64, submit: wire::SubmitRequest) {
        let tag = submit.client_tag;
        self.tags.lock().insert(
            tag,
            TagEntry {
                submit,
                key,
                shard: NO_SHARD,
                generation: 0,
                attempts: 0,
                parked: false,
            },
        );
    }

    /// Claims `tag` if `(shard, generation)` currently owns it: the
    /// caller gains the exclusive right (and duty) to answer the client.
    fn claim_owned(&self, tag: u64, shard: usize, generation: u64) -> bool {
        let mut tags = self.tags.lock();
        match tags.get(&tag) {
            Some(e) if e.shard == shard && e.generation == generation => {
                tags.remove(&tag);
                true
            }
            _ => false,
        }
    }

    /// Whether `(shard, generation)` owns `tag` (stage-update gate).
    fn contains_owned(&self, tag: u64, shard: usize, generation: u64) -> bool {
        let tags = self.tags.lock();
        matches!(tags.get(&tag), Some(e) if e.shard == shard && e.generation == generation)
    }

    /// Marks every tag owned by `(shard, generation)` as parked and
    /// returns them, for the Replay failover sweep. Parked entries stay
    /// in the table (the replay will re-own them) but are skipped by
    /// repeat sweeps.
    fn park_owned(&self, shard: usize, generation: u64) -> Vec<u64> {
        let mut tags = self.tags.lock();
        let mut parked = Vec::new();
        for (&tag, entry) in tags.iter_mut() {
            if entry.shard == shard && entry.generation == generation && !entry.parked {
                entry.parked = true;
                parked.push(tag);
            }
        }
        parked
    }

    /// Parks `tag` if `(shard, generation)` owns it and it is not parked
    /// yet — the single-tag variant of [`TagTable::park_owned`], used by
    /// a failed submit write whose upstream reader may have run its
    /// sweep *before* the write path stamped ownership (in which case
    /// the sweep saw nothing and only the writer can fail the tag over).
    /// The transition is under the table lock, so when writer and sweep
    /// race, exactly one of them parks (and queues) the tag.
    fn park_one(&self, tag: u64, shard: usize, generation: u64) -> bool {
        let mut tags = self.tags.lock();
        match tags.get_mut(&tag) {
            Some(e) if e.shard == shard && e.generation == generation && !e.parked => {
                e.parked = true;
                true
            }
            _ => false,
        }
    }

    /// Removes and returns every tag owned by `(shard, generation)`, for
    /// the Reject failover sweep: the caller answers each with
    /// `ShardLost`, exactly once.
    fn take_owned(&self, shard: usize, generation: u64) -> Vec<u64> {
        let mut tags = self.tags.lock();
        let taken: Vec<u64> = tags
            .iter()
            .filter(|(_, e)| e.shard == shard && e.generation == generation)
            .map(|(&tag, _)| tag)
            .collect();
        for tag in &taken {
            tags.remove(tag);
        }
        taken
    }

    /// Claims `tag` regardless of owner (the routing loop giving up).
    fn claim(&self, tag: u64) -> bool {
        self.tags.lock().remove(&tag).is_some()
    }

    fn is_empty(&self) -> bool {
        self.tags.lock().is_empty()
    }

    /// Removes and returns every tag (connection-drain failsafe).
    fn take_all(&self) -> Vec<u64> {
        self.tags.lock().drain().map(|(tag, _)| tag).collect()
    }
}

/// One proxied upstream connection: router → shard, carrying every
/// request one *client* connection routed to one *shard generation*.
/// Client tags pass through verbatim (they are unique per client
/// connection, and each client connection gets its own upstreams), so no
/// tag translation is ever needed.
struct UpstreamShared {
    /// Which shard (and which generation of it) this connection serves;
    /// the owner stamp its reader claims tags under.
    shard: usize,
    generation: u64,
    /// Write half toward the shard; locked per frame.
    writer: Mutex<TcpStream>,
    /// Write half back toward the client (shared with the other upstreams
    /// of the same client connection).
    client_writer: Arc<Mutex<TcpStream>>,
    /// The connection's tag-ownership table (shared with its other
    /// upstreams and the routing loop).
    table: Arc<TagTable>,
    /// Queue toward the connection's routing loop: tags parked by the
    /// failover sweep, awaiting replay.
    replay_tx: Mutex<mpsc::Sender<u64>>,
    /// Set once the upstream is unusable (severed, write failure, reader
    /// exit); the routing loop then dials a fresh upstream.
    dead: AtomicBool,
    /// Failover policy for tags stranded on this upstream.
    policy: FailoverPolicy,
    /// Hint carried by synthesized rejects.
    lost_retry_ms: u64,
    /// Router-lifetime count of synthesized `ShardLost` rejects.
    shard_lost: Arc<AtomicU64>,
    /// Router-lifetime count of tags replayed across a failover.
    failovers: Arc<AtomicU64>,
}

impl UpstreamShared {
    /// Kills the socket under the upstream reader/submitter: reads and
    /// writes start failing immediately, which makes the reader exit and
    /// run the failover sweep for everything still in flight.
    fn sever(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.writer.lock().shutdown(SocketShutdown::Both);
    }

    /// Failover sweep, run by the reader exactly once when it exits.
    /// Under `Replay`, parks every owned tag and queues it for replay;
    /// under `Reject`, claims each and answers `ShardLost`. On a clean
    /// drain every tag was already claimed by a forwarded answer, so the
    /// sweep is a no-op.
    fn fail_over(&self) {
        match self.policy {
            FailoverPolicy::Replay => {
                let parked = self.table.park_owned(self.shard, self.generation);
                if parked.is_empty() {
                    return;
                }
                let tx = self.replay_tx.lock();
                for tag in parked {
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    // A send can only fail after the routing loop (and
                    // its drain) exited, where the failsafe already
                    // answered everything left in the table.
                    let _ = tx.send(tag);
                }
            }
            FailoverPolicy::Reject => {
                for client_tag in self.table.take_owned(self.shard, self.generation) {
                    self.shard_lost.fetch_add(1, Ordering::Relaxed);
                    let _ = wire::write_frame(
                        &mut *self.client_writer.lock(),
                        &Frame::Reject {
                            client_tag,
                            retry_after_ms: self.lost_retry_ms,
                            reason: RejectReason::ShardLost,
                        },
                    );
                }
            }
        }
    }

    /// Single-tag failover, run by a failed submit write after severing.
    /// The reader's sweep may have already run — *before* the write path
    /// stamped this tag's ownership — in which case the sweep saw
    /// nothing and only this call rescues the tag. The park/claim
    /// transitions are serialized by the table lock, so when the sweep
    /// and the writer race, exactly one queues (or rejects) the tag.
    fn fail_over_tag(&self, tag: u64) {
        match self.policy {
            FailoverPolicy::Replay => {
                if self.table.park_one(tag, self.shard, self.generation) {
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    let _ = self.replay_tx.lock().send(tag);
                }
            }
            FailoverPolicy::Reject => {
                if self.table.claim_owned(tag, self.shard, self.generation) {
                    self.shard_lost.fetch_add(1, Ordering::Relaxed);
                    let _ = wire::write_frame(
                        &mut *self.client_writer.lock(),
                        &Frame::Reject {
                            client_tag: tag,
                            retry_after_ms: self.lost_retry_ms,
                            reason: RejectReason::ShardLost,
                        },
                    );
                }
            }
        }
    }
}

/// A live upstream as held by one client connection's handler.
struct Upstream {
    shared: Arc<UpstreamShared>,
    reader: JoinHandle<()>,
    /// Set once the connection drain sent this upstream a `Shutdown`:
    /// the gateway stops reading new submits after that, so the routing
    /// loop must dial fresh rather than reuse it.
    notified: bool,
}

/// Forwards shard → client frames for tags this upstream owns, then runs
/// the failover sweep on exit (whatever the exit reason — the sweep is a
/// no-op unless tags were stranded).
fn upstream_reader_loop(mut stream: TcpStream, shared: Arc<UpstreamShared>) {
    let mut buffer = FrameBuffer::new();
    loop {
        let frame = match buffer.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                if shared.dead.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(_) => {
                shared.dead.store(true, Ordering::Release);
                break;
            }
        };
        match frame {
            // Forward only tags we own and can claim: a tag that failed
            // over (re-owned by another shard) or was already answered
            // must not reach the client from here too.
            Frame::Final { client_tag, .. } | Frame::Reject { client_tag, .. }
                if shared
                    .table
                    .claim_owned(client_tag, shared.shard, shared.generation) =>
            {
                let _ = wire::write_frame(&mut *shared.client_writer.lock(), &frame);
            }
            Frame::StageUpdate { client_tag, .. }
                if shared
                    .table
                    .contains_owned(client_tag, shared.shard, shared.generation) =>
            {
                let _ = wire::write_frame(&mut *shared.client_writer.lock(), &frame);
            }
            // Handshake happened before this reader spawned; anything
            // else from the shard (or a disowned tag) is dropped.
            _ => {}
        }
    }
    shared.fail_over();
}

/// One gateway shard as tracked by the router.
struct ShardSlot {
    /// The shard's gateway; `None` after a kill, `Some` again after
    /// revival. Held out-of-band so killing never blocks the ring.
    gateway: Mutex<Option<Gateway>>,
    addr: Mutex<SocketAddr>,
    stats: Mutex<RuntimeStats>,
    status: Mutex<GatewayStatus>,
    /// The shard's model registry and tenant governor, held beyond the
    /// gateway itself so per-model/per-tenant rows keep aggregating (and
    /// survive) across a kill.
    registry: Mutex<ModelRegistry>,
    governor: Mutex<TenantGovernor>,
    /// Counters of this slot's pre-revival generations, folded in when a
    /// revive replaces the registry/governor handles.
    retired: Mutex<StatsSnapshot>,
    alive: AtomicBool,
    /// Bumped every time the slot gets a fresh gateway (revive); cached
    /// upstreams are keyed by `(shard, generation)` so a connection can
    /// never reuse a severed socket from the previous generation.
    generation: AtomicU64,
    /// Set while a graceful [`ShardRouter::remove_shard`] drain runs:
    /// off the ring, still serving its in-flight work.
    draining: AtomicBool,
    /// Live proxy connections into this shard, severed on death.
    upstreams: Mutex<Vec<Weak<UpstreamShared>>>,
}

impl ShardSlot {
    fn for_gateway(gateway: Gateway) -> Self {
        Self {
            addr: Mutex::new(gateway.local_addr()),
            stats: Mutex::new(gateway.stats()),
            status: Mutex::new(gateway.status()),
            registry: Mutex::new(gateway.registry()),
            governor: Mutex::new(gateway.governor()),
            retired: Mutex::new(StatsSnapshot::default()),
            alive: AtomicBool::new(true),
            generation: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            upstreams: Mutex::new(Vec::new()),
            gateway: Mutex::new(Some(gateway)),
        }
    }
}

/// An open double-routing window: dial failures against `shard` fall to
/// the next replica until `until`, instead of marking the shard dead.
struct Migration {
    shard: usize,
    until: Instant,
}

/// State shared by the accept loop, connection handlers, and the probe.
struct RouterShared {
    config: ShardConfig,
    /// Growable: `add_shard` appends, indices are stable forever.
    slots: RwLock<Vec<Arc<ShardSlot>>>,
    ring: RwLock<HashRing>,
    /// Bumped on every ring mutation (kill, revive, add, remove,
    /// rebalance); stamped on proxied submits.
    epoch: AtomicU64,
    /// Open double-routing windows (pruned lazily).
    migrations: Mutex<Vec<Migration>>,
    stop: AtomicBool,
    shard_lost: Arc<AtomicU64>,
    failovers: Arc<AtomicU64>,
    rebalances: AtomicU64,
    conn_counter: AtomicU64,
    accept_failed: AtomicBool,
    /// Graceful-drain watcher threads spawned by `remove_shard`.
    drainers: Mutex<Vec<JoinHandle<()>>>,
}

impl RouterShared {
    fn slot(&self, shard: usize) -> Arc<ShardSlot> {
        Arc::clone(&self.slots.read()[shard])
    }

    /// Takes `shard` off the ring and severs its proxies — but only if
    /// the slot is still at `generation`. Every down-verdict (probe
    /// status, dial failure, write failure) was formed against a specific
    /// incarnation; the guard keeps a verdict that raced a full
    /// kill+revive cycle from condemning the *new* incarnation. The
    /// alive flip and the ring removal happen together under the ring
    /// write lock, paired with `revive_shard`'s store+insert, so `alive`
    /// and ring membership can never be observed disagreeing.
    fn mark_shard_down(&self, shard: usize, generation: u64) {
        let slot = self.slot(shard);
        {
            let mut ring = self.ring.write();
            if slot.generation.load(Ordering::Acquire) != generation {
                return;
            }
            if !slot.alive.swap(false, Ordering::AcqRel) {
                return;
            }
            // Ring inside the same critical section: a submit that races
            // this sees either the old ring (its write then fails and
            // fails over) or the shrunk one.
            ring.remove(shard);
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        let upstreams: Vec<Weak<UpstreamShared>> = std::mem::take(&mut *slot.upstreams.lock());
        for weak in upstreams {
            if let Some(upstream) = weak.upgrade() {
                upstream.sever();
            }
        }
    }

    /// Whether `shard` is inside an open double-routing window.
    fn in_migration(&self, shard: usize) -> bool {
        let now = Instant::now();
        let mut migrations = self.migrations.lock();
        migrations.retain(|m| m.until > now);
        migrations.iter().any(|m| m.shard == shard)
    }
}

/// Sharded gateway front tier; see the module docs for semantics.
///
/// Dropping the router (or calling [`ShardRouter::shutdown`]) stops
/// accepting, joins every proxy connection, and drains each surviving
/// shard's gateway and runtime.
pub struct ShardRouter {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    waker: reactor::Waker,
    accept_handle: Option<JoinHandle<()>>,
    probe_handle: Option<JoinHandle<()>>,
    rebalance_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardRouter {
    /// Boots one gateway per runtime (each on its own loopback port) and
    /// binds the router socket in front of them.
    pub fn start(runtimes: Vec<ServingRuntime>, config: ShardConfig) -> io::Result<Self> {
        assert!(
            !runtimes.is_empty(),
            "a shard router needs at least one shard"
        );
        let mut slots = Vec::with_capacity(runtimes.len());
        let mut ring = HashRing::new(config.seed, config.virtual_nodes);
        for (i, runtime) in runtimes.into_iter().enumerate() {
            let mut gateway_config = config.gateway.clone();
            gateway_config.addr = "127.0.0.1:0".to_owned();
            let gateway = Gateway::start(runtime, gateway_config)?;
            ring.insert(i);
            slots.push(Arc::new(ShardSlot::for_gateway(gateway)));
        }

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let rebalance = config.rebalance.clone();
        let shared = Arc::new(RouterShared {
            config,
            slots: RwLock::new(slots),
            ring: RwLock::new(ring),
            epoch: AtomicU64::new(1),
            migrations: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            shard_lost: Arc::new(AtomicU64::new(0)),
            failovers: Arc::new(AtomicU64::new(0)),
            rebalances: AtomicU64::new(0),
            conn_counter: AtomicU64::new(0),
            accept_failed: AtomicBool::new(false),
            drainers: Mutex::new(Vec::new()),
        });
        let waker = reactor::Waker::new()?;
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            let waker = waker.clone();
            let poller = Poller::new()?;
            std::thread::Builder::new()
                .name("eugene-shard-accept".to_owned())
                .spawn(move || router_accept_loop(listener, shared, connections, poller, waker))
                .expect("spawn shard accept thread")
        };
        let probe_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eugene-shard-probe".to_owned())
                .spawn(move || probe_loop(shared))
                .expect("spawn shard probe thread")
        };
        let rebalance_handle = rebalance.map(|policy| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eugene-shard-rebalance".to_owned())
                .spawn(move || rebalance_loop(shared, policy))
                .expect("spawn shard rebalance thread")
        });
        Ok(Self {
            local_addr,
            shared,
            waker,
            accept_handle: Some(accept_handle),
            probe_handle: Some(probe_handle),
            rebalance_handle,
            connections,
        })
    }

    /// The router's bound address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total shard slots ever created (alive or not).
    pub fn num_shards(&self) -> usize {
        self.shared.slots.read().len()
    }

    /// Shards currently on the ring.
    pub fn alive_shards(&self) -> usize {
        self.shared.ring.read().len()
    }

    /// Where `key` currently routes, or `None` with no shard alive.
    pub fn shard_for_key(&self, key: u64) -> Option<usize> {
        self.shared.ring.read().route(key)
    }

    /// `key`'s replica group under the current ring: primary first, then
    /// the warm standby, then further successors.
    pub fn replicas_for_key(&self, key: u64) -> Vec<usize> {
        let n = self.shared.config.replica.replicas.max(2);
        self.shared.ring.read().route_replicas(key, n)
    }

    /// A point-in-time copy of the routing ring (tests and benches
    /// inspect placement and virtual-node weights through this).
    pub fn ring_snapshot(&self) -> HashRing {
        self.shared.ring.read().clone()
    }

    /// Monotonic ring epoch: bumped on every membership or weight
    /// change, stamped on every proxied submit.
    pub fn ring_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Relaxed)
    }

    /// The loopback address shard `index`'s gateway listens on.
    pub fn shard_addr(&self, index: usize) -> SocketAddr {
        *self.shared.slot(index).addr.lock()
    }

    /// Per-shard runtime occupancy handles, indexed by shard.
    pub fn shard_stats(&self) -> Vec<RuntimeStats> {
        self.shared
            .slots
            .read()
            .iter()
            .map(|slot| slot.stats.lock().clone())
            .collect()
    }

    /// Network-edge gauges of shard `index`'s gateway.
    pub fn shard_status(&self, index: usize) -> GatewayStatus {
        self.shared.slot(index).status.lock().clone()
    }

    /// Aggregate snapshot across all shards: totals plus per-model and
    /// per-tenant rows merged by name. Rows of a killed shard keep
    /// contributing (its registry and governor outlive the gateway), and
    /// a revive folds the killed generation into a retained baseline — so
    /// counters never regress across a kill/revive cycle.
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for slot in self.shared.slots.read().iter() {
            total.absorb(&slot.retired.lock());
            total.absorb(&slot.registry.lock().snapshot());
            for (name, row) in slot.governor.lock().snapshot() {
                total.per_tenant.entry(name).or_default().absorb(&row);
            }
        }
        total
    }

    /// `ShardLost` rejects the router has synthesized so far.
    pub fn shard_lost_rejects(&self) -> u64 {
        self.shared.shard_lost.load(Ordering::Relaxed)
    }

    /// In-flight submits transparently replayed across a shard failover
    /// so far.
    pub fn failover_replays(&self) -> u64 {
        self.shared.failovers.load(Ordering::Relaxed)
    }

    /// Virtual-node moves the load-aware rebalancer has applied so far.
    pub fn rebalances(&self) -> u64 {
        self.shared.rebalances.load(Ordering::Relaxed)
    }

    /// Whether the router's own accept loop is still healthy.
    pub fn accept_healthy(&self) -> bool {
        !self.shared.accept_failed.load(Ordering::Relaxed)
    }

    /// Kills shard `index` as a fault injection: the ring drops it, its
    /// proxies are severed (in-flight requests fail over per the
    /// connection policy — replayed to the standby, or answered
    /// `ShardLost`), and only then is its gateway torn down. Returns
    /// `false` if it was already down.
    pub fn kill_shard(&self, index: usize) -> bool {
        let slot = self.shared.slot(index);
        let generation = slot.generation.load(Ordering::Acquire);
        let was_alive = slot.alive.load(Ordering::Acquire);
        // Sever the proxies *before* the gateway's graceful shutdown:
        // clients must observe a deterministic failover, not a race
        // against the dying shard's drain.
        self.shared.mark_shard_down(index, generation);
        let gateway = slot.gateway.lock().take();
        if let Some(gateway) = gateway {
            gateway.shutdown();
        }
        was_alive
    }

    /// Brings shard `index` back with a fresh runtime. The ring update
    /// publishes only after the new gateway proves accept-healthy (a
    /// probe connection completes the handshake), so a concurrent submit
    /// can never route onto a listener that is not accepting yet. Its
    /// virtual nodes then return at the exact same points, so the
    /// assignment reverts to what it was before the kill.
    pub fn revive_shard(&self, index: usize, runtime: ServingRuntime) -> io::Result<()> {
        let slot = self.shared.slot(index);
        assert!(
            !slot.alive.load(Ordering::Acquire),
            "revive_shard on a live shard"
        );
        let mut gateway_config = self.shared.config.gateway.clone();
        gateway_config.addr = "127.0.0.1:0".to_owned();
        let gateway = Gateway::start(runtime, gateway_config)?;
        wait_accept_healthy(gateway.local_addr(), self.shared.config.read_poll)?;
        *slot.addr.lock() = gateway.local_addr();
        *slot.stats.lock() = gateway.stats();
        *slot.status.lock() = gateway.status();
        // Fold the killed generation's counters into the slot's retired
        // baseline before its handles are replaced, so aggregate rows
        // never regress across a kill/revive cycle.
        {
            let mut retired = slot.retired.lock();
            retired.absorb(&slot.registry.lock().snapshot());
            for (name, row) in slot.governor.lock().snapshot() {
                retired.per_tenant.entry(name).or_default().absorb(&row);
            }
        }
        *slot.registry.lock() = gateway.registry();
        *slot.governor.lock() = gateway.governor();
        *slot.gateway.lock() = Some(gateway);
        // New generation: cached upstreams from before the kill are
        // stale by construction and will be re-dialed, never reused. The
        // bump, the alive flip, and the ring insert happen together
        // under the ring write lock (paired with `mark_shard_down`) so a
        // stale down-verdict can neither land between the flip and the
        // insert — which would publish a dead-flagged shard the next
        // kill no-ops on — nor pass the generation guard afterwards.
        {
            let mut ring = self.shared.ring.write();
            slot.generation.fetch_add(1, Ordering::Release);
            slot.alive.store(true, Ordering::Release);
            ring.insert(index);
        }
        self.shared.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Live scale-out: boots a gateway for `runtime`, waits until it is
    /// accept-healthy, appends it as a new shard slot, and publishes its
    /// virtual nodes — moving only the bounded-remap key ranges. A
    /// double-routing window ([`ReplicaConfig::migration_window`]) then
    /// covers the cutover: dial failures against the newcomer fall back
    /// to each range's previous owner instead of declaring it dead.
    /// Returns the new shard's index.
    pub fn add_shard(&self, runtime: ServingRuntime) -> io::Result<usize> {
        let mut gateway_config = self.shared.config.gateway.clone();
        gateway_config.addr = "127.0.0.1:0".to_owned();
        let gateway = Gateway::start(runtime, gateway_config)?;
        wait_accept_healthy(gateway.local_addr(), self.shared.config.read_poll)?;
        let index = {
            let mut slots = self.shared.slots.write();
            slots.push(Arc::new(ShardSlot::for_gateway(gateway)));
            slots.len() - 1
        };
        self.shared.migrations.lock().push(Migration {
            shard: index,
            until: Instant::now() + self.shared.config.replica.migration_window,
        });
        self.shared.ring.write().insert(index);
        self.shared.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(index)
    }

    /// Live scale-in: takes shard `index` off the ring (new traffic
    /// immediately re-routes to the ranges' standbys), then drains it in
    /// the background — its gateway keeps serving until its in-flight
    /// work completes, so nothing is lost — and finally shuts it down.
    /// Refuses (returns `false`) for the last ring member or a shard
    /// already down.
    pub fn remove_shard(&self, index: usize) -> bool {
        let slot = self.shared.slot(index);
        {
            let mut ring = self.shared.ring.write();
            if ring.len() <= 1 || !ring.contains(index) {
                return false;
            }
            if !slot.alive.swap(false, Ordering::AcqRel) {
                return false;
            }
            ring.remove(index);
        }
        self.shared.epoch.fetch_add(1, Ordering::Relaxed);
        slot.draining.store(true, Ordering::Release);
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("eugene-shard-drain".to_owned())
            .spawn(move || drain_removed_shard(shared, index))
            .expect("spawn shard drain thread");
        self.shared.drainers.lock().push(handle);
        true
    }

    /// Stops accepting, joins every proxy connection, then drains each
    /// surviving shard.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.probe_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.rebalance_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for handle in handles {
            let _ = handle.join();
        }
        let drainers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.drainers.lock());
        for handle in drainers {
            let _ = handle.join();
        }
        let slots: Vec<Arc<ShardSlot>> = self.shared.slots.read().iter().cloned().collect();
        for slot in slots {
            if let Some(gateway) = slot.gateway.lock().take() {
                gateway.shutdown();
            }
        }
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Blocks until the gateway at `addr` completes a full
/// `Hello`/`HelloAck` handshake (bounded at ~2 s): proof the accept path
/// is live end to end, not merely that the port is bound.
fn wait_accept_healthy(addr: SocketAddr, read_poll: Duration) -> io::Result<()> {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        match probe_handshake(addr, read_poll, deadline) {
            Ok(()) => return Ok(()),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

fn probe_handshake(addr: SocketAddr, read_poll: Duration, deadline: Instant) -> io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(250))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(read_poll))?;
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            max_version: PROTOCOL_VERSION,
        },
    )
    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "probe hello failed"))?;
    let mut buffer = FrameBuffer::new();
    loop {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "accept-health probe timed out",
            ));
        }
        match buffer.poll(&mut stream) {
            Ok(Some(Frame::HelloAck { .. })) => return Ok(()),
            Ok(Some(_)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected HelloAck from probed shard",
                ))
            }
            Ok(None) => continue,
            Err(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "probe handshake failed",
                ))
            }
        }
    }
}

/// Background drain for a gracefully removed shard: waits until its
/// runtime reports zero in-flight work (bounded), then shuts the gateway
/// down. The gateway's own shutdown drains whatever remains, so even a
/// deadline hit loses nothing.
fn drain_removed_shard(shared: Arc<RouterShared>, index: usize) {
    let slot = shared.slot(index);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !shared.stop.load(Ordering::Relaxed) && Instant::now() < deadline {
        let in_flight = slot.stats.lock().in_flight();
        if in_flight == 0 {
            break;
        }
        std::thread::sleep(shared.config.read_poll);
    }
    slot.draining.store(false, Ordering::Release);
    let gateway = slot.gateway.lock().take();
    if let Some(gateway) = gateway {
        gateway.shutdown();
    }
}

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;

fn router_accept_loop(
    listener: TcpListener,
    shared: Arc<RouterShared>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    mut poller: Poller,
    waker: reactor::Waker,
) {
    if poller
        .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
        .and_then(|()| poller.register(waker.read_fd(), TOKEN_WAKER, Interest::READ))
        .is_err()
    {
        shared.accept_failed.store(true, Ordering::Relaxed);
        return;
    }
    let mut events = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        // Reap finished connection handlers so the tracked vector stays
        // bounded by live connections under churn.
        connections.lock().retain(|h| !h.is_finished());
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::Builder::new()
                        .name("eugene-shard-conn".to_owned())
                        .spawn(move || serve_client_connection(stream, shared))
                        .expect("spawn shard connection thread");
                    connections.lock().push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    shared.accept_failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if poller.wait(&mut events, None).is_err() {
            shared.accept_failed.store(true, Ordering::Relaxed);
            return;
        }
        if events.iter().any(|e| e.token == TOKEN_WAKER) {
            waker.drain();
        }
    }
}

/// Health probe: a shard whose gateway reports a dead accept path (which
/// includes a poisoned readiness reactor) is taken off the ring.
fn probe_loop(shared: Arc<RouterShared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        let slots: Vec<Arc<ShardSlot>> = shared.slots.read().iter().cloned().collect();
        for (i, slot) in slots.iter().enumerate() {
            if !slot.alive.load(Ordering::Acquire) {
                continue;
            }
            // Generation first: if the slot is revived between this
            // status read and the verdict below, the guard inside
            // `mark_shard_down` discards the stale observation.
            let generation = slot.generation.load(Ordering::Acquire);
            let failed = slot.status.lock().accept_failed();
            if failed || slot.gateway.lock().is_none() {
                shared.mark_shard_down(i, generation);
            }
        }
        std::thread::sleep(shared.config.probe_interval);
    }
}

/// Load-aware rebalancer: each tick diffs per-shard completion counters;
/// when the hottest shard's delta exceeds `max_spread`× the coldest's
/// (and the sample is large enough to trust), it moves `step` virtual
/// nodes from hot to cold. Weights persist on the ring, so a revive
/// keeps the rebalanced assignment.
fn rebalance_loop(shared: Arc<RouterShared>, policy: RebalanceConfig) {
    let mut last: HashMap<usize, u64> = HashMap::new();
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(policy.interval);
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let members: Vec<usize> = shared.ring.read().shards().to_vec();
        if members.len() < 2 {
            continue;
        }
        let mut deltas: Vec<(usize, u64)> = Vec::with_capacity(members.len());
        let slots: Vec<Arc<ShardSlot>> = shared.slots.read().iter().cloned().collect();
        for &shard in &members {
            let completed = slots[shard].stats.lock().completed();
            let prev = last.insert(shard, completed).unwrap_or(completed);
            deltas.push((shard, completed.saturating_sub(prev)));
        }
        let total: u64 = deltas.iter().map(|&(_, d)| d).sum();
        if total < policy.min_samples {
            continue;
        }
        let &(hot, hot_delta) = deltas.iter().max_by_key(|&&(_, d)| d).expect(">=2 members");
        let &(cold, cold_delta) = deltas.iter().min_by_key(|&&(_, d)| d).expect(">=2 members");
        if hot == cold || (hot_delta as f64) <= policy.max_spread * (cold_delta.max(1) as f64) {
            continue;
        }
        {
            let mut ring = shared.ring.write();
            let hot_vnodes = ring.vnodes_of(hot);
            if hot_vnodes <= policy.min_vnodes {
                continue;
            }
            let step = policy.step.min(hot_vnodes - policy.min_vnodes).max(1);
            ring.set_vnodes(hot, hot_vnodes - step);
            let cold_vnodes = ring.vnodes_of(cold);
            ring.set_vnodes(cold, cold_vnodes + step);
        }
        shared.epoch.fetch_add(1, Ordering::Relaxed);
        shared.rebalances.fetch_add(1, Ordering::Relaxed);
    }
}

/// How many routing attempts (dials and writes both count) one submit
/// may spend chasing the ring across shard deaths before the router
/// gives up and synthesizes `ShardLost` — exactly once, via the tag
/// table.
const SUBMIT_REROUTE_LIMIT: usize = 4;

/// Everything one client connection's routing loop owns.
struct ConnState {
    shared: Arc<RouterShared>,
    client_writer: Arc<Mutex<TcpStream>>,
    table: Arc<TagTable>,
    replay_tx: mpsc::Sender<u64>,
    /// Live upstream per shard; staleness (dead, old generation, or
    /// drain-notified) forces a fresh dial.
    upstreams: HashMap<usize, Upstream>,
    /// Upstreams replaced while still potentially delivering answers
    /// for tags they own; joined at connection end.
    retired: Vec<Upstream>,
}

impl ConnState {
    /// Routes the table entry for `tag` onto the ring: picks the first
    /// healthy replica, dials or reuses its upstream, stamps the current
    /// ring epoch, and writes the submit. Dial failures walk the replica
    /// group (respecting migration grace); a failed write severs the
    /// upstream and leaves the failover sweep to re-queue the tag. When
    /// no shard can take the request (or attempts run out), claims the
    /// tag and synthesizes `ShardLost` — the single place that counter
    /// can increment for a routed tag.
    fn route_entry(&mut self, tag: u64) {
        // Candidates that failed to dial under migration grace this
        // call: skipped locally without marking the shard down.
        let mut skip: Vec<usize> = Vec::new();
        loop {
            let key = {
                let tags = self.table.tags.lock();
                match tags.get(&tag) {
                    // Already answered (claimed) — nothing to route.
                    None => return,
                    Some(e) if e.attempts >= SUBMIT_REROUTE_LIMIT => {
                        drop(tags);
                        self.give_up(tag);
                        return;
                    }
                    Some(e) => e.key,
                }
            };
            let replicas = self.shared.config.replica.replicas.max(2);
            let candidates = self.shared.ring.read().route_replicas(key, replicas);
            let Some(&shard) = candidates.iter().find(|s| !skip.contains(s)) else {
                self.give_up(tag);
                return;
            };
            {
                let mut tags = self.table.tags.lock();
                match tags.get_mut(&tag) {
                    Some(e) => e.attempts += 1,
                    None => return,
                }
            }
            if let Err(dialed_generation) = self.ensure_upstream(shard) {
                if self.shared.in_migration(shard) {
                    // Double-routing window: the newcomer may not be
                    // reachable yet; fall back to the range's previous
                    // owner without declaring the shard dead.
                    skip.push(shard);
                } else {
                    self.shared.mark_shard_down(shard, dialed_generation);
                }
                continue;
            }
            let upstream = self.upstreams.get(&shard).expect("upstream just ensured");
            let generation = upstream.shared.generation;
            // Set ownership *before* the bytes leave, so the answer
            // (however fast) always finds its owner; stamp the ring
            // epoch the routing decision was made under.
            let frame = {
                let mut tags = self.table.tags.lock();
                let Some(entry) = tags.get_mut(&tag) else {
                    return;
                };
                entry.shard = shard;
                entry.generation = generation;
                entry.parked = false;
                let mut submit = entry.submit.clone();
                submit.epoch = Some(self.shared.epoch.load(Ordering::Relaxed));
                Frame::Submit(submit)
            };
            let write_result = wire::write_frame(&mut *upstream.shared.writer.lock(), &frame);
            match write_result {
                Ok(()) => return,
                Err(_) => {
                    // Exactly-once by construction: do NOT retry in
                    // line. Sever, then fail over *this* tag explicitly
                    // — the reader's sweep may have run before the
                    // ownership stamp above and missed it; the parked
                    // transition keeps the two paths from both queueing.
                    upstream.shared.sever();
                    upstream.shared.fail_over_tag(tag);
                    if !self.shared.in_migration(shard) {
                        self.shared.mark_shard_down(shard, generation);
                    }
                    return;
                }
            }
        }
    }

    /// Claims `tag` and answers `ShardLost`: no shard can take it. The
    /// claim makes the synthesis exactly-once — if a real answer or the
    /// failover sweep got there first, this is a no-op.
    fn give_up(&self, tag: u64) {
        if !self.table.claim(tag) {
            return;
        }
        self.shared.shard_lost.fetch_add(1, Ordering::Relaxed);
        let _ = wire::write_frame(
            &mut *self.client_writer.lock(),
            &Frame::Reject {
                client_tag: tag,
                retry_after_ms: self.shared.config.lost_retry_ms,
                reason: RejectReason::ShardLost,
            },
        );
    }

    /// Makes `self.upstreams[shard]` a usable connection to the shard's
    /// *current* generation: reuses a healthy cached upstream, retires a
    /// stale one (dead, previous generation, or drain-notified) and
    /// dials fresh. A dial failure returns the generation that was
    /// dialed, so the caller's down-verdict can never condemn a newer
    /// incarnation of the slot.
    fn ensure_upstream(&mut self, shard: usize) -> Result<(), u64> {
        let slot = self.shared.slot(shard);
        let generation = slot.generation.load(Ordering::Acquire);
        let stale = match self.upstreams.get(&shard) {
            None => false,
            Some(u) => {
                u.shared.dead.load(Ordering::Acquire)
                    || u.shared.generation != generation
                    || u.notified
            }
        };
        if stale {
            // A dead upstream's reader is exiting anyway; a live-but-
            // stale one (old generation / drain-notified) may still be
            // delivering answers for tags it owns, so retire it without
            // severing and join it at connection end.
            let old = self.upstreams.remove(&shard).expect("stale entry exists");
            if old.shared.dead.load(Ordering::Acquire) {
                old.shared.sever();
            }
            self.retired.push(old);
        }
        if self.upstreams.contains_key(&shard) {
            return Ok(());
        }
        match dial_upstream(
            &self.shared,
            &slot,
            shard,
            generation,
            &self.client_writer,
            &self.table,
            &self.replay_tx,
        ) {
            Ok(upstream) => {
                self.upstreams.insert(shard, upstream);
                Ok(())
            }
            Err(_) => Err(generation),
        }
    }
}

fn serve_client_connection(mut stream: TcpStream, shared: Arc<RouterShared>) {
    let read_poll = shared.config.read_poll;
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(read_poll)).is_err() {
        return;
    }
    let mut buffer = FrameBuffer::new();
    // Handshake: the router speaks for the whole tier.
    let version = loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match buffer.poll(&mut stream) {
            Ok(Some(Frame::Hello { max_version })) => break max_version.min(PROTOCOL_VERSION),
            Ok(Some(_)) | Err(_) => return,
            Ok(None) => continue,
        }
    };
    if version == 0 || wire::write_frame(&mut stream, &Frame::HelloAck { version }).is_err() {
        return;
    }
    let client_writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Fallback affinity for submits without an explicit routing key: all
    // keyless requests of one connection stick to one shard.
    let conn_key = splitmix64(0xC0_22_EC_71 ^ shared.conn_counter.fetch_add(1, Ordering::Relaxed));
    let (replay_tx, replay_rx) = mpsc::channel::<u64>();
    let mut conn = ConnState {
        shared: Arc::clone(&shared),
        client_writer,
        table: Arc::new(TagTable::default()),
        replay_tx,
        upstreams: HashMap::new(),
        retired: Vec::new(),
    };

    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        // Failover replays first: tags parked by a dead upstream's sweep
        // re-route to their key's new owner (the warm standby).
        while let Ok(tag) = replay_rx.try_recv() {
            conn.route_entry(tag);
        }
        let frame = match buffer.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            Err(_) => break,
        };
        match frame {
            Frame::Submit(submit) => {
                let key = submit.routing_key.unwrap_or(conn_key);
                let tag = submit.client_tag;
                conn.table.begin(key, submit);
                conn.route_entry(tag);
            }
            Frame::Ping { nonce }
                if wire::write_frame(&mut *conn.client_writer.lock(), &Frame::Pong { nonce })
                    .is_err() =>
            {
                break;
            }
            Frame::Ping { .. } => {}
            Frame::Shutdown => break,
            // Hello replays and server->client kinds are ignored, same as
            // a plain gateway.
            _ => {}
        }
    }

    // Drain: ask every upstream shard to finish its in-flight work,
    // keep servicing failover replays (a shard dying *mid-drain* still
    // fails its tags over to a survivor), and leave only when every tag
    // has been answered. A drain-notified upstream stops reading new
    // submits, so a mid-drain replay dials fresh (`notified` staleness
    // in `ensure_upstream`). The failsafe deadline converts anything
    // still unanswered into `ShardLost` so the client can never hang.
    let failsafe = Instant::now() + Duration::from_secs(10);
    loop {
        while let Ok(tag) = replay_rx.try_recv() {
            conn.route_entry(tag);
        }
        for upstream in conn.upstreams.values_mut() {
            if !upstream.notified {
                upstream.notified = true;
                let _ = wire::write_frame(&mut *upstream.shared.writer.lock(), &Frame::Shutdown);
            }
        }
        if conn.table.is_empty() {
            break;
        }
        if Instant::now() >= failsafe {
            for tag in conn.table.take_all() {
                shared.shard_lost.fetch_add(1, Ordering::Relaxed);
                let _ = wire::write_frame(
                    &mut *conn.client_writer.lock(),
                    &Frame::Reject {
                        client_tag: tag,
                        retry_after_ms: shared.config.lost_retry_ms,
                        reason: RejectReason::ShardLost,
                    },
                );
            }
            break;
        }
        if let Ok(tag) = replay_rx.recv_timeout(read_poll) {
            conn.route_entry(tag);
        }
    }
    let retired = std::mem::take(&mut conn.retired);
    for upstream in retired
        .into_iter()
        .chain(conn.upstreams.drain().map(|(_, u)| u))
    {
        if !upstream.notified {
            let _ = wire::write_frame(&mut *upstream.shared.writer.lock(), &Frame::Shutdown);
        }
        let _ = upstream.reader.join();
    }
}

/// Dials shard `shard`'s gateway (at generation `generation`), completes
/// the handshake, spawns the forwarding reader, and registers the
/// upstream for severing on death.
#[allow(clippy::too_many_arguments)]
fn dial_upstream(
    shared: &Arc<RouterShared>,
    slot: &Arc<ShardSlot>,
    shard: usize,
    generation: u64,
    client_writer: &Arc<Mutex<TcpStream>>,
    table: &Arc<TagTable>,
    replay_tx: &mpsc::Sender<u64>,
) -> Result<Upstream, WireError> {
    if !slot.alive.load(Ordering::Acquire) {
        return Err(WireError::Io(io::Error::new(
            io::ErrorKind::NotConnected,
            "shard is down",
        )));
    }
    let addr = *slot.addr.lock();
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(shared.config.read_poll))
        .map_err(WireError::Io)?;
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            max_version: PROTOCOL_VERSION,
        },
    )?;
    let mut buffer = FrameBuffer::new();
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if Instant::now() >= deadline {
            return Err(WireError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "shard handshake timed out",
            )));
        }
        match buffer.poll(&mut stream)? {
            Some(Frame::HelloAck { version }) if (1..=PROTOCOL_VERSION).contains(&version) => break,
            Some(_) => return Err(WireError::Malformed("expected HelloAck from shard")),
            None => continue,
        }
    }
    let upstream_shared = Arc::new(UpstreamShared {
        shard,
        generation,
        writer: Mutex::new(stream.try_clone().map_err(WireError::Io)?),
        client_writer: Arc::clone(client_writer),
        table: Arc::clone(table),
        replay_tx: Mutex::new(replay_tx.clone()),
        dead: AtomicBool::new(false),
        policy: shared.config.replica.failover,
        lost_retry_ms: shared.config.lost_retry_ms,
        shard_lost: Arc::clone(&shared.shard_lost),
        failovers: Arc::clone(&shared.failovers),
    });
    {
        let mut registered = slot.upstreams.lock();
        registered.retain(|weak| weak.strong_count() > 0);
        registered.push(Arc::downgrade(&upstream_shared));
    }
    // Late check: the shard may have been marked down between the alive
    // check and the registration; a severed registration guarantees the
    // reader cannot outlive the shard silently.
    if !slot.alive.load(Ordering::Acquire) {
        upstream_shared.sever();
    }
    let reader = {
        let shared = Arc::clone(&upstream_shared);
        std::thread::Builder::new()
            .name("eugene-shard-upstream".to_owned())
            .spawn(move || upstream_reader_loop(stream, shared))
            .expect("spawn upstream reader thread")
    };
    Ok(Upstream {
        shared: upstream_shared,
        reader,
        notified: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_deterministically_and_membership_is_order_free() {
        let mut a = HashRing::new(7, 64);
        let mut b = HashRing::new(7, 64);
        for shard in 0..4 {
            a.insert(shard);
        }
        for shard in (0..4).rev() {
            b.insert(shard);
        }
        for key in 0..512u64 {
            assert_eq!(a.route(key), b.route(key), "insert order must not matter");
        }
        assert_eq!(a.shards(), &[0, 1, 2, 3]);
    }

    #[test]
    fn ring_remove_moves_only_the_removed_shards_keys() {
        let mut ring = HashRing::new(3, 64);
        for shard in 0..4 {
            ring.insert(shard);
        }
        let before: Vec<Option<usize>> = (0..2048u64).map(|k| ring.route(k)).collect();
        ring.remove(2);
        for (key, owner) in before.iter().enumerate() {
            let now = ring.route(key as u64);
            if *owner == Some(2) {
                assert_ne!(now, Some(2));
            } else {
                assert_eq!(now, *owner, "key {key} moved although its shard survived");
            }
        }
        ring.insert(2);
        let after: Vec<Option<usize>> = (0..2048u64).map(|k| ring.route(k)).collect();
        assert_eq!(before, after, "re-insert must restore the exact assignment");
    }

    #[test]
    fn ring_spreads_keys_across_all_shards() {
        let mut ring = HashRing::new(11, 64);
        for shard in 0..4 {
            ring.insert(shard);
        }
        let mut counts = [0usize; 4];
        for key in 0..4096u64 {
            counts[ring.route(key).unwrap()] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 4096 / 16,
                "shard {shard} owns only {count} of 4096 keys"
            );
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(0, 64);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
        assert!(ring.route_replicas(42, 2).is_empty());
    }

    #[test]
    fn replicas_start_with_the_owner_and_are_distinct() {
        let mut ring = HashRing::new(5, 64);
        for shard in 0..4 {
            ring.insert(shard);
        }
        for key in 0..1024u64 {
            let replicas = ring.route_replicas(key, 3);
            assert_eq!(replicas.len(), 3);
            assert_eq!(Some(replicas[0]), ring.route(key), "primary is the owner");
            let mut sorted = replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct shards");
        }
    }

    #[test]
    fn standby_inherits_the_key_when_the_primary_leaves() {
        let mut ring = HashRing::new(9, 64);
        for shard in 0..4 {
            ring.insert(shard);
        }
        for key in 0..1024u64 {
            let replicas = ring.route_replicas(key, 2);
            let primary = replicas[0];
            let standby = replicas[1];
            let mut without = ring.clone();
            without.remove(primary);
            assert_eq!(
                without.route(key),
                Some(standby),
                "removal successor must be the standby for key {key}"
            );
        }
    }

    #[test]
    fn set_vnodes_shifts_share_and_persists_across_remove() {
        let mut ring = HashRing::new(13, 64);
        for shard in 0..3 {
            ring.insert(shard);
        }
        let owned_before = (0..4096u64).filter(|&k| ring.route(k) == Some(0)).count();
        ring.set_vnodes(0, 16);
        let owned_after = (0..4096u64).filter(|&k| ring.route(k) == Some(0)).count();
        assert!(
            owned_after < owned_before,
            "fewer vnodes must shrink shard 0's share ({owned_before} -> {owned_after})"
        );
        // Keys not owned by shard 0 before or after must not have moved
        // between the *other* shards: only the re-weighted shard's
        // ranges are in play.
        let snapshot: Vec<Option<usize>> = (0..4096u64).map(|k| ring.route(k)).collect();
        ring.remove(0);
        ring.insert(0);
        let restored: Vec<Option<usize>> = (0..4096u64).map(|k| ring.route(k)).collect();
        assert_eq!(
            snapshot, restored,
            "weight must persist across remove/insert"
        );
        assert_eq!(ring.vnodes_of(0), 16);
    }
}
