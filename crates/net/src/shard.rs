//! Sharded front tier: one router socket, N [`Gateway`] shards.
//!
//! A [`ShardRouter`] owns N gateway shards (each wrapping its own
//! [`ServingRuntime`]) and exposes the exact same wire protocol as a
//! single gateway, so existing [`crate::client::EugeneClient`] /
//! [`crate::client::MultiplexClient`] users work unchanged. Every
//! [`Frame::Submit`] is steered by a consistent-hash ring
//! ([`HashRing`]) over the request's routing key — the client-provided
//! [`crate::wire::SubmitRequest::routing_key`] when present, a
//! per-connection key otherwise — so related requests stick to one shard
//! while the keyspace spreads evenly across all of them.
//!
//! # Failure semantics
//!
//! A probe thread watches each shard's accept health
//! ([`GatewayStatus::accept_failed`], which also covers a poisoned
//! readiness reactor). When a shard dies — probe detection, a failed
//! dial/write, or an explicit [`ShardRouter::kill_shard`] — the router:
//!
//! 1. removes the shard from the ring, so *new* sessions re-admit onto
//!    survivors only;
//! 2. severs its proxy connections, so every in-flight request on the
//!    dead shard is answered with a well-defined [`Frame::Reject`]
//!    carrying [`RejectReason::ShardLost`] (never a hang, never a
//!    fabricated `Final`);
//! 3. on [`ShardRouter::revive_shard`], re-inserts the shard's virtual
//!    nodes, restoring the exact prior assignment — consistent hashing
//!    bounds the remapped keyspace to roughly `K/N` both ways.

use crate::reactor::{self, Interest, Poller};
use crate::server::{Gateway, GatewayConfig, GatewayStatus};
use crate::tenant::TenantGovernor;
use crate::wire::{self, Frame, FrameBuffer, RejectReason, WireError, PROTOCOL_VERSION};
use eugene_serve::{ModelRegistry, RuntimeStats, ServingRuntime, StatsSnapshot};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer used for
/// both ring points and key hashes (deterministic across runs and
/// platforms, unlike `std`'s `RandomState`).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Consistent-hash ring with virtual nodes.
///
/// Each member shard owns `virtual_nodes` points on a `u64` ring; a key
/// routes to the owner of the first point at or after its hash (wrapping).
/// Point positions depend only on `(seed, shard, vnode)` — never on
/// insertion order — so membership changes are *minimal*: removing a
/// shard moves only the keys it owned, and re-inserting it restores the
/// exact prior assignment.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    virtual_nodes: usize,
    /// Sorted `(point_hash, shard)` pairs; ties break by shard index so
    /// the order is fully deterministic.
    points: Vec<(u64, usize)>,
    members: Vec<usize>,
}

impl HashRing {
    /// An empty ring. `virtual_nodes` is clamped to at least 1.
    pub fn new(seed: u64, virtual_nodes: usize) -> Self {
        Self {
            seed,
            virtual_nodes: virtual_nodes.max(1),
            points: Vec::new(),
            members: Vec::new(),
        }
    }

    fn point_hash(&self, shard: usize, vnode: usize) -> u64 {
        splitmix64(self.seed ^ splitmix64(((shard as u64) << 32) | vnode as u64))
    }

    fn key_hash(&self, key: u64) -> u64 {
        // A distinct stream from point hashes (the leading constant), so
        // keys never collide with points systematically.
        splitmix64(self.seed ^ key ^ 0xA5A5_5A5A_F0F0_0F0F)
    }

    /// Adds `shard`'s virtual nodes; no-op if already a member.
    pub fn insert(&mut self, shard: usize) {
        if self.members.contains(&shard) {
            return;
        }
        self.members.push(shard);
        self.members.sort_unstable();
        for vnode in 0..self.virtual_nodes {
            self.points.push((self.point_hash(shard, vnode), shard));
        }
        self.points.sort_unstable();
    }

    /// Removes `shard`'s virtual nodes; no-op if not a member.
    pub fn remove(&mut self, shard: usize) {
        self.members.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Whether `shard` is currently on the ring.
    pub fn contains(&self, shard: usize) -> bool {
        self.members.contains(&shard)
    }

    /// Current members, ascending.
    pub fn shards(&self) -> &[usize] {
        &self.members
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The shard owning `key`, or `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = self.key_hash(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[i % self.points.len()];
        Some(shard)
    }
}

/// Policy for a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Router bind address; port 0 picks a free port.
    pub addr: String,
    /// Virtual nodes per shard on the ring: more smooths the key
    /// distribution, at `O(n log n)` rebuild cost on membership change.
    pub virtual_nodes: usize,
    /// Ring seed: routers sharing a seed (and shard count) agree on the
    /// full key→shard assignment.
    pub seed: u64,
    /// How often the health probe re-checks each shard's accept health.
    pub probe_interval: Duration,
    /// Read-poll granularity on router sockets (client and upstream):
    /// bounds how long threads take to observe shutdown/severing.
    pub read_poll: Duration,
    /// `retry_after_ms` hint carried by synthesized `ShardLost` rejects:
    /// a retry opens a fresh session, which re-admits onto survivors.
    pub lost_retry_ms: u64,
    /// Template for each shard's gateway; `addr` is overridden with a
    /// fresh loopback port per shard.
    pub gateway: GatewayConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            virtual_nodes: 64,
            seed: 0,
            probe_interval: Duration::from_millis(25),
            read_poll: Duration::from_millis(10),
            lost_retry_ms: 25,
            gateway: GatewayConfig::default(),
        }
    }
}

/// One proxied upstream connection: router → shard, carrying every
/// request one *client* connection routed to one *shard*. Client tags
/// pass through verbatim (they are unique per client connection, and each
/// client connection gets its own upstreams), so no tag translation is
/// ever needed.
struct UpstreamShared {
    /// Write half toward the shard; locked per frame.
    writer: Mutex<TcpStream>,
    /// Write half back toward the client (shared with the other upstreams
    /// of the same client connection).
    client_writer: Arc<Mutex<TcpStream>>,
    /// Tags submitted to this shard whose `Final`/`Reject` has not come
    /// back yet. Ownership protocol: whoever removes a tag answers for
    /// it — the reader on forwarding a terminal frame or synthesizing
    /// `ShardLost`, the submitter on a failed write (which then reroutes).
    in_flight: Mutex<HashSet<u64>>,
    /// Set once the upstream is unusable (severed, write failure, reader
    /// exit); submitters then dial a fresh upstream or reroute.
    dead: AtomicBool,
    /// Set when the client connection is closing normally, so an EOF from
    /// the drained shard is not treated as shard loss.
    closing: AtomicBool,
    /// Hint carried by synthesized rejects.
    lost_retry_ms: u64,
    /// Router-lifetime count of synthesized `ShardLost` rejects.
    shard_lost: Arc<AtomicU64>,
}

impl UpstreamShared {
    /// Kills the socket under the upstream reader/submitter: reads and
    /// writes start failing immediately, which makes the reader synthesize
    /// `ShardLost` for everything still in flight.
    fn sever(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.writer.lock().shutdown(SocketShutdown::Both);
    }

    /// Answers every still-pending tag with a `ShardLost` reject. Called
    /// by the reader exactly once, when the shard socket fails.
    fn abort_in_flight(&self) {
        let tags: Vec<u64> = self.in_flight.lock().drain().collect();
        for client_tag in tags {
            self.shard_lost.fetch_add(1, Ordering::Relaxed);
            let _ = wire::write_frame(
                &mut *self.client_writer.lock(),
                &Frame::Reject {
                    client_tag,
                    retry_after_ms: self.lost_retry_ms,
                    reason: RejectReason::ShardLost,
                },
            );
        }
    }
}

/// A live upstream as held by one client connection's handler.
struct Upstream {
    shared: Arc<UpstreamShared>,
    reader: JoinHandle<()>,
}

/// Forwards shard → client frames, maintaining the in-flight tag set.
fn upstream_reader_loop(mut stream: TcpStream, shared: Arc<UpstreamShared>) {
    let mut buffer = FrameBuffer::new();
    loop {
        let frame = match buffer.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                if shared.dead.load(Ordering::Acquire) {
                    shared.abort_in_flight();
                    return;
                }
                continue;
            }
            Err(_) => {
                shared.dead.store(true, Ordering::Release);
                if !shared.closing.load(Ordering::Acquire) {
                    shared.abort_in_flight();
                }
                return;
            }
        };
        match frame {
            // Forward only tags we still own: a tag the submitter
            // reclaimed (failed write, rerouted elsewhere) must not
            // reach the client from here too.
            Frame::Final { client_tag, .. } | Frame::Reject { client_tag, .. }
                if shared.in_flight.lock().remove(&client_tag) =>
            {
                let _ = wire::write_frame(&mut *shared.client_writer.lock(), &frame);
            }
            Frame::StageUpdate { client_tag, .. }
                if shared.in_flight.lock().contains(&client_tag) =>
            {
                let _ = wire::write_frame(&mut *shared.client_writer.lock(), &frame);
            }
            // Handshake happened before this reader spawned; anything
            // else from the shard (or a disowned tag) is dropped.
            _ => {}
        }
    }
}

/// One gateway shard as tracked by the router.
struct ShardSlot {
    /// The shard's gateway; `None` after a kill, `Some` again after
    /// revival. Held out-of-band so killing never blocks the ring.
    gateway: Mutex<Option<Gateway>>,
    addr: Mutex<SocketAddr>,
    stats: Mutex<RuntimeStats>,
    status: Mutex<GatewayStatus>,
    /// The shard's model registry and tenant governor, held beyond the
    /// gateway itself so per-model/per-tenant rows keep aggregating (and
    /// survive) across a kill.
    registry: Mutex<ModelRegistry>,
    governor: Mutex<TenantGovernor>,
    /// Counters of this slot's pre-revival generations, folded in when a
    /// revive replaces the registry/governor handles.
    retired: Mutex<StatsSnapshot>,
    alive: AtomicBool,
    /// Live proxy connections into this shard, severed on death.
    upstreams: Mutex<Vec<Weak<UpstreamShared>>>,
}

/// State shared by the accept loop, connection handlers, and the probe.
struct RouterShared {
    config: ShardConfig,
    slots: Vec<ShardSlot>,
    ring: RwLock<HashRing>,
    stop: AtomicBool,
    shard_lost: Arc<AtomicU64>,
    conn_counter: AtomicU64,
    accept_failed: AtomicBool,
}

impl RouterShared {
    /// Takes `shard` off the ring and severs its proxies. Idempotent;
    /// the `alive` swap makes exactly one caller run the teardown.
    fn mark_shard_down(&self, shard: usize) {
        let slot = &self.slots[shard];
        if !slot.alive.swap(false, Ordering::AcqRel) {
            return;
        }
        // Ring first: a submit that races this sees either the old ring
        // (its write then fails and it reroutes) or the shrunk one.
        self.ring.write().remove(shard);
        let upstreams: Vec<Weak<UpstreamShared>> = std::mem::take(&mut *slot.upstreams.lock());
        for weak in upstreams {
            if let Some(upstream) = weak.upgrade() {
                upstream.sever();
            }
        }
    }
}

/// Sharded gateway front tier; see the module docs for semantics.
///
/// Dropping the router (or calling [`ShardRouter::shutdown`]) stops
/// accepting, joins every proxy connection, and drains each surviving
/// shard's gateway and runtime.
pub struct ShardRouter {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    waker: reactor::Waker,
    accept_handle: Option<JoinHandle<()>>,
    probe_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardRouter {
    /// Boots one gateway per runtime (each on its own loopback port) and
    /// binds the router socket in front of them.
    pub fn start(runtimes: Vec<ServingRuntime>, config: ShardConfig) -> io::Result<Self> {
        assert!(
            !runtimes.is_empty(),
            "a shard router needs at least one shard"
        );
        let mut slots = Vec::with_capacity(runtimes.len());
        let mut ring = HashRing::new(config.seed, config.virtual_nodes);
        for (i, runtime) in runtimes.into_iter().enumerate() {
            let mut gateway_config = config.gateway.clone();
            gateway_config.addr = "127.0.0.1:0".to_owned();
            let gateway = Gateway::start(runtime, gateway_config)?;
            ring.insert(i);
            slots.push(ShardSlot {
                addr: Mutex::new(gateway.local_addr()),
                stats: Mutex::new(gateway.stats()),
                status: Mutex::new(gateway.status()),
                registry: Mutex::new(gateway.registry()),
                governor: Mutex::new(gateway.governor()),
                retired: Mutex::new(StatsSnapshot::default()),
                alive: AtomicBool::new(true),
                upstreams: Mutex::new(Vec::new()),
                gateway: Mutex::new(Some(gateway)),
            });
        }

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(RouterShared {
            config,
            slots,
            ring: RwLock::new(ring),
            stop: AtomicBool::new(false),
            shard_lost: Arc::new(AtomicU64::new(0)),
            conn_counter: AtomicU64::new(0),
            accept_failed: AtomicBool::new(false),
        });
        let waker = reactor::Waker::new()?;
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            let waker = waker.clone();
            let poller = Poller::new()?;
            std::thread::Builder::new()
                .name("eugene-shard-accept".to_owned())
                .spawn(move || router_accept_loop(listener, shared, connections, poller, waker))
                .expect("spawn shard accept thread")
        };
        let probe_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eugene-shard-probe".to_owned())
                .spawn(move || probe_loop(shared))
                .expect("spawn shard probe thread")
        };
        Ok(Self {
            local_addr,
            shared,
            waker,
            accept_handle: Some(accept_handle),
            probe_handle: Some(probe_handle),
            connections,
        })
    }

    /// The router's bound address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total shards (alive or not).
    pub fn num_shards(&self) -> usize {
        self.shared.slots.len()
    }

    /// Shards currently on the ring.
    pub fn alive_shards(&self) -> usize {
        self.shared.ring.read().len()
    }

    /// Where `key` currently routes, or `None` with no shard alive.
    pub fn shard_for_key(&self, key: u64) -> Option<usize> {
        self.shared.ring.read().route(key)
    }

    /// The loopback address shard `index`'s gateway listens on.
    pub fn shard_addr(&self, index: usize) -> SocketAddr {
        *self.shared.slots[index].addr.lock()
    }

    /// Per-shard runtime occupancy handles, indexed by shard.
    pub fn shard_stats(&self) -> Vec<RuntimeStats> {
        self.shared
            .slots
            .iter()
            .map(|slot| slot.stats.lock().clone())
            .collect()
    }

    /// Network-edge gauges of shard `index`'s gateway.
    pub fn shard_status(&self, index: usize) -> GatewayStatus {
        self.shared.slots[index].status.lock().clone()
    }

    /// Aggregate snapshot across all shards: totals plus per-model and
    /// per-tenant rows merged by name. Rows of a killed shard keep
    /// contributing (its registry and governor outlive the gateway), and
    /// a revive folds the killed generation into a retained baseline — so
    /// counters never regress across a kill/revive cycle.
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for slot in &self.shared.slots {
            total.absorb(&slot.retired.lock());
            total.absorb(&slot.registry.lock().snapshot());
            for (name, row) in slot.governor.lock().snapshot() {
                total.per_tenant.entry(name).or_default().absorb(&row);
            }
        }
        total
    }

    /// `ShardLost` rejects the router has synthesized so far.
    pub fn shard_lost_rejects(&self) -> u64 {
        self.shared.shard_lost.load(Ordering::Relaxed)
    }

    /// Whether the router's own accept loop is still healthy.
    pub fn accept_healthy(&self) -> bool {
        !self.shared.accept_failed.load(Ordering::Relaxed)
    }

    /// Kills shard `index` as a fault injection: the ring drops it, every
    /// in-flight request on it is answered `ShardLost`, and only then is
    /// its gateway torn down. Returns `false` if it was already down.
    pub fn kill_shard(&self, index: usize) -> bool {
        let was_alive = self.shared.slots[index].alive.load(Ordering::Acquire);
        // Sever the proxies *before* the gateway's graceful shutdown:
        // clients must observe deterministic ShardLost rejects, not a
        // race against the dying shard's drain.
        self.shared.mark_shard_down(index);
        let gateway = self.shared.slots[index].gateway.lock().take();
        if let Some(gateway) = gateway {
            gateway.shutdown();
        }
        was_alive
    }

    /// Brings shard `index` back with a fresh runtime. Its virtual nodes
    /// return to the ring at the exact same points, so the assignment
    /// reverts to what it was before the kill.
    pub fn revive_shard(&self, index: usize, runtime: ServingRuntime) -> io::Result<()> {
        let slot = &self.shared.slots[index];
        assert!(
            !slot.alive.load(Ordering::Acquire),
            "revive_shard on a live shard"
        );
        let mut gateway_config = self.shared.config.gateway.clone();
        gateway_config.addr = "127.0.0.1:0".to_owned();
        let gateway = Gateway::start(runtime, gateway_config)?;
        *slot.addr.lock() = gateway.local_addr();
        *slot.stats.lock() = gateway.stats();
        *slot.status.lock() = gateway.status();
        // Fold the killed generation's counters into the slot's retired
        // baseline before its handles are replaced, so aggregate rows
        // never regress across a kill/revive cycle.
        {
            let mut retired = slot.retired.lock();
            retired.absorb(&slot.registry.lock().snapshot());
            for (name, row) in slot.governor.lock().snapshot() {
                retired.per_tenant.entry(name).or_default().absorb(&row);
            }
        }
        *slot.registry.lock() = gateway.registry();
        *slot.governor.lock() = gateway.governor();
        *slot.gateway.lock() = Some(gateway);
        slot.alive.store(true, Ordering::Release);
        self.shared.ring.write().insert(index);
        Ok(())
    }

    /// Stops accepting, joins every proxy connection, then drains each
    /// surviving shard.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.probe_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for handle in handles {
            let _ = handle.join();
        }
        for slot in &self.shared.slots {
            if let Some(gateway) = slot.gateway.lock().take() {
                gateway.shutdown();
            }
        }
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;

fn router_accept_loop(
    listener: TcpListener,
    shared: Arc<RouterShared>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    mut poller: Poller,
    waker: reactor::Waker,
) {
    if poller
        .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
        .and_then(|()| poller.register(waker.read_fd(), TOKEN_WAKER, Interest::READ))
        .is_err()
    {
        shared.accept_failed.store(true, Ordering::Relaxed);
        return;
    }
    let mut events = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        // Reap finished connection handlers so the tracked vector stays
        // bounded by live connections under churn.
        connections.lock().retain(|h| !h.is_finished());
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::Builder::new()
                        .name("eugene-shard-conn".to_owned())
                        .spawn(move || serve_client_connection(stream, shared))
                        .expect("spawn shard connection thread");
                    connections.lock().push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    shared.accept_failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if poller.wait(&mut events, None).is_err() {
            shared.accept_failed.store(true, Ordering::Relaxed);
            return;
        }
        if events.iter().any(|e| e.token == TOKEN_WAKER) {
            waker.drain();
        }
    }
}

/// Health probe: a shard whose gateway reports a dead accept path (which
/// includes a poisoned readiness reactor) is taken off the ring.
fn probe_loop(shared: Arc<RouterShared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        for (i, slot) in shared.slots.iter().enumerate() {
            if !slot.alive.load(Ordering::Acquire) {
                continue;
            }
            let failed = slot.status.lock().accept_failed();
            if failed || slot.gateway.lock().is_none() {
                shared.mark_shard_down(i);
            }
        }
        std::thread::sleep(shared.config.probe_interval);
    }
}

/// How many times one submit may chase the ring across shard deaths
/// before giving up with `ShardLost`. Each failed attempt takes the
/// observed-dead shard off the ring, so attempts never revisit a corpse.
const SUBMIT_REROUTE_LIMIT: usize = 4;

fn serve_client_connection(mut stream: TcpStream, shared: Arc<RouterShared>) {
    let read_poll = shared.config.read_poll;
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(read_poll)).is_err() {
        return;
    }
    let mut buffer = FrameBuffer::new();
    // Handshake: the router speaks for the whole tier.
    let version = loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match buffer.poll(&mut stream) {
            Ok(Some(Frame::Hello { max_version })) => break max_version.min(PROTOCOL_VERSION),
            Ok(Some(_)) | Err(_) => return,
            Ok(None) => continue,
        }
    };
    if version == 0 || wire::write_frame(&mut stream, &Frame::HelloAck { version }).is_err() {
        return;
    }
    let client_writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Fallback affinity for submits without an explicit routing key: all
    // keyless requests of one connection stick to one shard.
    let conn_key = splitmix64(0xC0_22_EC_71 ^ shared.conn_counter.fetch_add(1, Ordering::Relaxed));
    let mut upstreams: HashMap<usize, Upstream> = HashMap::new();

    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let frame = match buffer.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            Err(_) => break,
        };
        match frame {
            Frame::Submit(submit) => {
                let key = submit.routing_key.unwrap_or(conn_key);
                proxy_submit(&shared, &client_writer, &mut upstreams, key, submit);
            }
            Frame::Ping { nonce }
                if wire::write_frame(&mut *client_writer.lock(), &Frame::Pong { nonce })
                    .is_err() =>
            {
                break;
            }
            Frame::Ping { .. } => {}
            Frame::Shutdown => break,
            // Hello replays and server->client kinds are ignored, same as
            // a plain gateway.
            _ => {}
        }
    }

    // Drain: ask every upstream shard to finish its in-flight work, then
    // join the readers (they exit on the shard's post-drain close, or
    // synthesize ShardLost if the shard died instead).
    for (_, upstream) in upstreams.iter() {
        upstream.shared.closing.store(true, Ordering::Release);
        let mut writer = upstream.shared.writer.lock();
        let _ = wire::write_frame(&mut *writer, &Frame::Shutdown);
    }
    for (_, upstream) in upstreams.drain() {
        let _ = upstream.reader.join();
    }
}

/// Routes one submit onto the ring, dialing/reusing the upstream proxy
/// connection, rerouting around shards that die under it, and answering
/// `ShardLost` itself when no shard can take the request.
fn proxy_submit(
    shared: &Arc<RouterShared>,
    client_writer: &Arc<Mutex<TcpStream>>,
    upstreams: &mut HashMap<usize, Upstream>,
    key: u64,
    submit: wire::SubmitRequest,
) {
    let client_tag = submit.client_tag;
    let frame = Frame::Submit(submit);
    for _ in 0..SUBMIT_REROUTE_LIMIT {
        let Some(shard) = shared.ring.read().route(key) else {
            break;
        };
        // Reuse the live upstream for this shard or dial a fresh one.
        let needs_dial = upstreams
            .get(&shard)
            .map(|u| u.shared.dead.load(Ordering::Acquire))
            .unwrap_or(true);
        if needs_dial {
            if let Some(stale) = upstreams.remove(&shard) {
                stale.shared.sever();
                let _ = stale.reader.join();
            }
            match dial_upstream(shared, shard, client_writer) {
                Ok(upstream) => {
                    upstreams.insert(shard, upstream);
                }
                Err(_) => {
                    // Unreachable shard: treat as down and re-route.
                    shared.mark_shard_down(shard);
                    continue;
                }
            }
        }
        let upstream = upstreams.get(&shard).expect("upstream just ensured");
        // Register the tag before the bytes leave, so the answer (however
        // fast) always finds its owner.
        upstream.shared.in_flight.lock().insert(client_tag);
        let write_result = wire::write_frame(&mut *upstream.shared.writer.lock(), &frame);
        match write_result {
            Ok(()) => return,
            Err(_) => {
                // Reclaim the tag: if the reader already answered for it
                // (severed concurrently -> ShardLost synthesized), the
                // client has its reject and rerouting would double-answer.
                let reclaimed = upstream.shared.in_flight.lock().remove(&client_tag);
                upstream.shared.dead.store(true, Ordering::Release);
                shared.mark_shard_down(shard);
                if !reclaimed {
                    return;
                }
            }
        }
    }
    // No shard could take it: the session's shard is lost.
    shared.shard_lost.fetch_add(1, Ordering::Relaxed);
    let _ = wire::write_frame(
        &mut *client_writer.lock(),
        &Frame::Reject {
            client_tag,
            retry_after_ms: shared.config.lost_retry_ms,
            reason: RejectReason::ShardLost,
        },
    );
}

/// Dials shard `shard`'s gateway, completes the handshake, spawns the
/// forwarding reader, and registers the upstream for severing on death.
fn dial_upstream(
    shared: &Arc<RouterShared>,
    shard: usize,
    client_writer: &Arc<Mutex<TcpStream>>,
) -> Result<Upstream, WireError> {
    let slot = &shared.slots[shard];
    if !slot.alive.load(Ordering::Acquire) {
        return Err(WireError::Io(io::Error::new(
            io::ErrorKind::NotConnected,
            "shard is down",
        )));
    }
    let addr = *slot.addr.lock();
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(shared.config.read_poll))
        .map_err(WireError::Io)?;
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            max_version: PROTOCOL_VERSION,
        },
    )?;
    let mut buffer = FrameBuffer::new();
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if Instant::now() >= deadline {
            return Err(WireError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "shard handshake timed out",
            )));
        }
        match buffer.poll(&mut stream)? {
            Some(Frame::HelloAck { version }) if (1..=PROTOCOL_VERSION).contains(&version) => break,
            Some(_) => return Err(WireError::Malformed("expected HelloAck from shard")),
            None => continue,
        }
    }
    let upstream_shared = Arc::new(UpstreamShared {
        writer: Mutex::new(stream.try_clone().map_err(WireError::Io)?),
        client_writer: Arc::clone(client_writer),
        in_flight: Mutex::new(HashSet::new()),
        dead: AtomicBool::new(false),
        closing: AtomicBool::new(false),
        lost_retry_ms: shared.config.lost_retry_ms,
        shard_lost: Arc::clone(&shared.shard_lost),
    });
    {
        let mut registered = slot.upstreams.lock();
        registered.retain(|weak| weak.strong_count() > 0);
        registered.push(Arc::downgrade(&upstream_shared));
    }
    // Late check: the shard may have been marked down between the alive
    // check and the registration; a severed registration guarantees the
    // reader cannot outlive the shard silently.
    if !slot.alive.load(Ordering::Acquire) {
        upstream_shared.sever();
    }
    let reader = {
        let shared = Arc::clone(&upstream_shared);
        std::thread::Builder::new()
            .name("eugene-shard-upstream".to_owned())
            .spawn(move || upstream_reader_loop(stream, shared))
            .expect("spawn upstream reader thread")
    };
    Ok(Upstream {
        shared: upstream_shared,
        reader,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_deterministically_and_membership_is_order_free() {
        let mut a = HashRing::new(7, 64);
        let mut b = HashRing::new(7, 64);
        for shard in 0..4 {
            a.insert(shard);
        }
        for shard in (0..4).rev() {
            b.insert(shard);
        }
        for key in 0..512u64 {
            assert_eq!(a.route(key), b.route(key), "insert order must not matter");
        }
        assert_eq!(a.shards(), &[0, 1, 2, 3]);
    }

    #[test]
    fn ring_remove_moves_only_the_removed_shards_keys() {
        let mut ring = HashRing::new(3, 64);
        for shard in 0..4 {
            ring.insert(shard);
        }
        let before: Vec<Option<usize>> = (0..2048u64).map(|k| ring.route(k)).collect();
        ring.remove(2);
        for (key, owner) in before.iter().enumerate() {
            let now = ring.route(key as u64);
            if *owner == Some(2) {
                assert_ne!(now, Some(2));
            } else {
                assert_eq!(now, *owner, "key {key} moved although its shard survived");
            }
        }
        ring.insert(2);
        let after: Vec<Option<usize>> = (0..2048u64).map(|k| ring.route(k)).collect();
        assert_eq!(before, after, "re-insert must restore the exact assignment");
    }

    #[test]
    fn ring_spreads_keys_across_all_shards() {
        let mut ring = HashRing::new(11, 64);
        for shard in 0..4 {
            ring.insert(shard);
        }
        let mut counts = [0usize; 4];
        for key in 0..4096u64 {
            counts[ring.route(key).unwrap()] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 4096 / 16,
                "shard {shard} owns only {count} of 4096 keys"
            );
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(0, 64);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
    }
}
