//! Readiness-driven gateway backend: one event loop, every socket.
//!
//! The [`GatewayBackend::Readiness`](crate::server::GatewayBackend)
//! engine serves all connections from a single thread parked in a
//! [`Poller`](crate::reactor::Poller) (epoll on Linux, `poll(2)`
//! elsewhere). Sockets are non-blocking: the loop accepts, handshakes,
//! reassembles frames through the same [`FrameBuffer`] the blocking
//! backend uses, and demultiplexes the runtime's shared response and
//! progress funnels back into per-connection write queues with
//! backpressure (write interest is enabled only while a queue is
//! non-empty, so ten thousand idle connections cost zero wakeups).
//!
//! The registry's completion waker
//! ([`ModelRegistry::set_completion_waker`]) nudges the loop's wakeup
//! pipe whenever any model's runtime finishes a response or emits stage
//! progress, so forwarding latency is event-driven end to end — no
//! polling tick anywhere.
//!
//! Admission ([`admit_submit`]), frame encoding, and [`GatewayStatus`]
//! accounting are shared with the blocking backend: the two engines are
//! indistinguishable on the wire.

use crate::reactor::{self, Interest, Poller};
use crate::server::{
    admit_submit, final_frame, is_transient_accept_error, GatewayConfig, GatewayStatus, Lease,
    ACCEPT_BACKOFF_BASE, ACCEPT_BACKOFF_CAP, ACCEPT_RETRY_LIMIT,
};
use crate::tenant::TenantGovernor;
use crate::wire::{self, Frame, FrameBuffer, SubmitRequest, WireError, PROTOCOL_VERSION};
use crossbeam::channel::{Receiver, Sender};
use eugene_serve::{
    InferenceRequest, InferenceResponse, ModelRegistry, RequestId, ServiceClass, StageProgress,
};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token for the listening socket.
const TOKEN_LISTENER: usize = 0;
/// Poller token for the wakeup pipe (runtime completions + shutdown).
const TOKEN_WAKER: usize = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: usize = 2;

/// One queued outbound frame; `lease` rides along on `Final` frames so
/// the admission reservation(s) are released exactly when the frame has
/// been written (or the connection died trying).
struct WriteEntry {
    bytes: Vec<u8>,
    /// Drop guard only — released when the entry is popped (flushed) or
    /// the connection is torn down.
    _lease: Option<Lease>,
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    buffer: FrameBuffer,
    /// Hello/HelloAck completed; Submits before it close the connection.
    handshaken: bool,
    /// False once the client sent `Shutdown`, closed its write side, or
    /// corrupted the stream: no more reads, drain in-flight, then close.
    reading: bool,
    write: VecDeque<WriteEntry>,
    /// Bytes of `write.front()` already flushed to the socket.
    write_pos: usize,
    /// Requests admitted on this connection whose `Final` has not yet
    /// been queued.
    in_flight: usize,
    /// The interest the poller currently holds for this socket; `None`
    /// when deregistered (quiescent half-closed connections must leave
    /// the poller or level-triggered hangup events would spin the loop).
    registered: Option<Interest>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buffer: FrameBuffer::new(),
            handshaken: false,
            reading: true,
            write: VecDeque::new(),
            write_pos: 0,
            in_flight: 0,
            registered: None,
        }
    }

    /// The interest this connection currently needs from the poller.
    fn wanted_interest(&self) -> Interest {
        Interest {
            readable: self.reading,
            writable: !self.write.is_empty(),
        }
    }

    /// Done: nothing left to read, write, or wait for.
    fn drained(&self) -> bool {
        !self.reading && self.in_flight == 0 && self.write.is_empty()
    }
}

/// Where an in-flight request's answer frames must be routed.
struct Route {
    token: usize,
    tag: u64,
    lease: Lease,
}

/// Starts the event loop; returns its join handle. Fails fast (before
/// the thread exists) if the poller cannot be created or the listener
/// and wakeup pipe cannot be registered.
pub(crate) fn spawn(
    listener: TcpListener,
    registry: ModelRegistry,
    governor: TenantGovernor,
    config: Arc<GatewayConfig>,
    stop: Arc<AtomicBool>,
    status: GatewayStatus,
    waker: reactor::Waker,
) -> io::Result<JoinHandle<()>> {
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(waker.read_fd(), TOKEN_WAKER, Interest::READ)?;

    // Everything any model's runtime finishes — responses and stage
    // progress — lands in these funnels and kicks the wakeup pipe, so
    // the loop never needs a forwarding-latency poll tick. The registry
    // re-applies the waker to models loaded later, so model churn never
    // drops the nudge.
    let (respond_tx, respond_rx) = crossbeam::channel::unbounded();
    let (progress_tx, progress_rx) = crossbeam::channel::unbounded();
    {
        let waker = waker.clone();
        registry.set_completion_waker(Arc::new(move || waker.wake()));
    }

    status.note_thread_spawned();
    let mut reactor = Reactor {
        poller,
        listener,
        listener_alive: true,
        waker,
        registry,
        governor,
        config,
        stop,
        status,
        conns: HashMap::new(),
        routes: HashMap::new(),
        respond_tx,
        respond_rx,
        progress_tx,
        progress_rx,
        next_token: TOKEN_FIRST_CONN,
        accept_backoff: ACCEPT_BACKOFF_BASE,
        accept_errors: 0,
        accept_retry_at: None,
        stopping: false,
    };
    std::thread::Builder::new()
        .name("eugene-gateway-reactor".to_owned())
        .spawn(move || reactor.run())
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    listener_alive: bool,
    waker: reactor::Waker,
    registry: ModelRegistry,
    governor: TenantGovernor,
    config: Arc<GatewayConfig>,
    stop: Arc<AtomicBool>,
    status: GatewayStatus,
    conns: HashMap<usize, Conn>,
    routes: HashMap<RequestId, Route>,
    respond_tx: Sender<InferenceResponse>,
    respond_rx: Receiver<InferenceResponse>,
    progress_tx: Sender<StageProgress>,
    progress_rx: Receiver<StageProgress>,
    next_token: usize,
    accept_backoff: Duration,
    accept_errors: u32,
    /// Set while a transient accept error has the listener benched; the
    /// loop's wait timeout shrinks to the remaining backoff instead of
    /// the thread sleeping.
    accept_retry_at: Option<Instant>,
    stopping: bool,
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<reactor::Event> = Vec::new();
        let mut dirty: Vec<usize> = Vec::new();
        loop {
            if self.stop.load(Ordering::Relaxed) && !self.stopping {
                self.begin_shutdown();
            }
            if self.stopping && self.drained() {
                self.close_everything();
                return;
            }

            let timeout = self.wait_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller is terminal: flush nothing more, fold
                // the gateway rather than spin.
                self.status.note_accept_failed();
                self.close_everything();
                return;
            }

            dirty.clear();
            for &event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_burst(&mut dirty),
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.handle_conn_event(token, event, &mut dirty),
                }
            }
            // A benched listener re-arms by deadline, not by event.
            if let Some(at) = self.accept_retry_at {
                if Instant::now() >= at {
                    self.accept_retry_at = None;
                    self.accept_burst(&mut dirty);
                }
            }

            self.drain_funnels(&mut dirty);
            self.settle(&mut dirty);
        }
    }

    /// The poller wait deadline: indefinite when fully event-driven,
    /// bounded only while an accept backoff or shutdown drain is pending.
    fn wait_timeout(&self) -> Option<Duration> {
        if self.stopping {
            return Some(Duration::from_millis(50));
        }
        self.accept_retry_at.map(|at| {
            at.saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1))
        })
    }

    fn begin_shutdown(&mut self) {
        self.stopping = true;
        if self.listener_alive {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_alive = false;
        }
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.reading = false;
            }
            self.update_interest(token);
        }
    }

    /// Shutdown is complete once every admitted request has been
    /// answered and every answer flushed.
    fn drained(&self) -> bool {
        self.routes.is_empty() && self.conns.values().all(|c| c.write.is_empty())
    }

    fn close_everything(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    fn accept_burst(&mut self, dirty: &mut Vec<usize>) {
        if !self.listener_alive || self.accept_retry_at.is_some() || self.stopping {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.accept_errors = 0;
                    self.accept_backoff = ACCEPT_BACKOFF_BASE;
                    if stream.set_nonblocking(true).is_err() {
                        continue; // stillborn socket; drop it
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    self.status.note_connection_opened();
                    self.conns.insert(token, Conn::new(stream));
                    self.update_interest(token);
                    dirty.push(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.accept_errors = 0;
                    self.accept_backoff = ACCEPT_BACKOFF_BASE;
                    return;
                }
                Err(e) => {
                    self.accept_errors += 1;
                    if !is_transient_accept_error(&e) || self.accept_errors > ACCEPT_RETRY_LIMIT {
                        self.status.note_accept_failed();
                        let _ = self.poller.deregister(self.listener.as_raw_fd());
                        self.listener_alive = false;
                        return;
                    }
                    // Bench the listener for one backoff period; the
                    // loop keeps serving established connections
                    // meanwhile (the blocking backend sleeps here).
                    self.status.note_accept_retry();
                    self.accept_retry_at = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                    return;
                }
            }
        }
    }

    fn handle_conn_event(&mut self, token: usize, event: reactor::Event, dirty: &mut Vec<usize>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // already closed this round
        };
        if (event.readable || event.hangup) && conn.reading {
            self.drive_read(token);
        } else if event.hangup {
            // Half-closed connection with nothing left to read: the peer
            // is gone (or reset). If a flush attempt cannot finish now,
            // it never will — drop the connection.
            if self.drive_write(token).map_or(true, |flushed| !flushed) {
                self.close_conn(token);
                return;
            }
        }
        if event.writable && self.conns.contains_key(&token) && self.drive_write(token).is_err() {
            self.close_conn(token);
            return;
        }
        dirty.push(token);
    }

    /// Reads and handles every complete frame currently available.
    fn drive_read(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.reading {
                return;
            }
            match conn.buffer.poll(&mut conn.stream) {
                Ok(Some(frame)) => self.handle_frame(token, frame),
                Ok(None) => return, // would block: all caught up
                Err(WireError::Truncated) => {
                    // Peer closed its write side: stop reading, keep the
                    // connection until in-flight answers have flushed.
                    conn.reading = false;
                    return;
                }
                Err(_) => {
                    // Corrupt stream: no resynchronization possible.
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    fn handle_frame(&mut self, token: usize, frame: Frame) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.handshaken {
            match frame {
                Frame::Hello { max_version } if max_version >= 1 => {
                    conn.handshaken = true;
                    let ack = Frame::HelloAck {
                        version: PROTOCOL_VERSION.min(max_version),
                    };
                    self.queue_frame(token, &ack, None);
                }
                _ => self.close_conn(token),
            }
            return;
        }
        match frame {
            Frame::Submit(submit) => self.handle_submit(token, submit),
            Frame::Ping { nonce } => self.queue_frame(token, &Frame::Pong { nonce }, None),
            Frame::Shutdown => {
                conn.reading = false;
            }
            // Clients have no business sending server->client frames or
            // a second Hello; ignore rather than kill in-flight work.
            _ => {}
        }
    }

    fn handle_submit(&mut self, token: usize, submit: SubmitRequest) {
        let SubmitRequest {
            client_tag,
            class,
            budget_ms,
            want_progress,
            payload,
            // Steering happens in the sharded front tier; a gateway shard
            // serves whatever lands on it.
            routing_key: _,
            model,
            tenant,
            // Ring-epoch stamp is observability for the router tier; a
            // gateway ignores it.
            epoch: _,
        } = submit;
        // A zero budget can never be met (and ServiceClass rejects it):
        // answer expired immediately rather than erroring the connection.
        if budget_ms == 0 {
            let frame = Frame::Final {
                client_tag,
                response: wire::WireResponse {
                    predicted: None,
                    confidence: None,
                    stages_executed: 0,
                    expired: true,
                    latency_us: 0,
                    degraded: false,
                },
            };
            self.queue_frame(token, &frame, None);
            return;
        }
        let lease = match admit_submit(
            &self.config,
            &self.status,
            &self.governor,
            &class,
            tenant.as_deref(),
        ) {
            Ok(lease) => lease,
            Err((retry_after_ms, reason)) => {
                let frame = Frame::Reject {
                    client_tag,
                    retry_after_ms,
                    reason,
                };
                self.queue_frame(token, &frame, None);
                return;
            }
        };
        // Same budget re-anchoring as the blocking backend: remaining
        // milliseconds against the server clock.
        let service_class = ServiceClass::new(&class, Duration::from_millis(budget_ms));
        let request = InferenceRequest::new(payload, service_class);
        let respond_tx = self.respond_tx.clone();
        let progress = want_progress.then(|| self.progress_tx.clone());
        let id = match self
            .registry
            .submit_to(model.as_deref(), request, respond_tx, progress)
        {
            Ok((id, _model)) => id,
            Err(eugene_serve::RegistryError::UnknownModel(_)) => {
                let frame = Frame::Reject {
                    client_tag,
                    retry_after_ms: 0,
                    reason: wire::RejectReason::UnknownModel,
                };
                self.queue_frame(token, &frame, None);
                return;
            }
        };
        // Single-threaded: the route is registered before the loop can
        // observe the completion, so responses can never orphan here.
        self.routes.insert(
            id,
            Route {
                token,
                tag: client_tag,
                lease,
            },
        );
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.in_flight += 1;
        }
    }

    /// Forwards everything the runtime has finished, preserving the
    /// per-tag "all `StageUpdate`s, then the `Final`" wire contract: the
    /// runtime enqueues a request's progress strictly before its
    /// response, so sweeping the progress funnel dry before forwarding
    /// each response guarantees that response's updates are already
    /// queued ahead of its `Final`.
    fn drain_funnels(&mut self, dirty: &mut Vec<usize>) {
        loop {
            while let Ok(event) = self.progress_rx.try_recv() {
                let Some(route) = self.routes.get(&event.request_id) else {
                    continue; // connection died; drop the update
                };
                let frame = Frame::StageUpdate {
                    client_tag: route.tag,
                    stage: event.stage as u32,
                    confidence: event.confidence,
                    predicted: event.predicted as u64,
                };
                let token = route.token;
                self.queue_frame(token, &frame, None);
                dirty.push(token);
            }
            let Ok(response) = self.respond_rx.try_recv() else {
                return;
            };
            let Some(Route { token, tag, lease }) = self.routes.remove(&response.id) else {
                continue; // connection died before the answer; drop it
            };
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.in_flight = conn.in_flight.saturating_sub(1);
                let frame = final_frame(tag, response);
                self.queue_frame(token, &frame, Some(lease));
                dirty.push(token);
            }
            // Connection gone: dropping `lease` releases the admission
            // reservation(s) here instead.
        }
    }

    /// Encodes `frame` onto `token`'s write queue and flushes
    /// opportunistically (most frames go out without a poller round).
    fn queue_frame(&mut self, token: usize, frame: &Frame, lease: Option<Lease>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Single choke point every outbound frame passes through, so
        // terminal answers are counted exactly once per request.
        match frame {
            Frame::Final { .. } => self.status.note_final_sent(),
            Frame::Reject { .. } => self.status.note_reject_sent(),
            _ => {}
        }
        conn.write.push_back(WriteEntry {
            bytes: wire::encode_frame(frame),
            _lease: lease,
        });
        if self.drive_write(token).is_err() {
            self.close_conn(token);
        }
    }

    /// Writes as much queued data as the socket accepts. Returns
    /// `Ok(true)` when the queue is fully flushed, `Ok(false)` on
    /// backpressure (write interest stays armed), `Err` when the peer is
    /// gone.
    fn drive_write(&mut self, token: usize) -> io::Result<bool> {
        let Some(conn) = self.conns.get_mut(&token) else {
            return Ok(true);
        };
        while let Some(entry) = conn.write.front() {
            match conn.stream.write(&entry.bytes[conn.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    conn.write_pos += n;
                    if conn.write_pos == entry.bytes.len() {
                        conn.write.pop_front(); // drops the slot, if any
                        conn.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Reconciles poller interest with a connection's current needs, and
    /// closes connections that have fully drained. Deduplicates `dirty`
    /// in place (a token may be touched several times per round).
    fn settle(&mut self, dirty: &mut Vec<usize>) {
        dirty.sort_unstable();
        dirty.dedup();
        for &token in dirty.iter() {
            if self.conns.get(&token).is_some_and(|c| c.drained()) {
                self.close_conn(token);
            } else {
                self.update_interest(token);
            }
        }
    }

    /// Registers, reregisters, or deregisters `token`'s socket so the
    /// poller's interest matches [`Conn::wanted_interest`]. A connection
    /// wanting nothing (half-closed, waiting on the runtime) leaves the
    /// poller entirely: with level-triggered polling a dead-read socket
    /// would otherwise report hangup forever and spin the loop.
    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = conn.wanted_interest();
        let fd = conn.stream.as_raw_fd();
        let have = conn.registered;
        if have == Some(want) {
            return;
        }
        if !want.readable && !want.writable {
            if have.is_some() {
                let _ = self.poller.deregister(fd);
                conn.registered = None;
            }
            return;
        }
        let armed = if have.is_some() {
            self.poller.reregister(fd, token, want).is_ok()
        } else {
            self.poller.register(fd, token, want).is_ok()
        };
        if armed {
            conn.registered = Some(want);
        } else if have.is_none() {
            // A socket the poller never knew about cannot make progress.
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.registered.is_some() {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
            self.status.note_connection_closed();
            // `conn.write` drops here, releasing any admission slots
            // still attached to unflushed `Final` frames.
        }
    }
}
