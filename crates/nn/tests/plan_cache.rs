//! Plan-cache lifecycle tests: hit/miss accounting, invalidation on
//! every parameter-mutation path, generation tags proving no stale plan
//! is ever served, the quantize-after-compile regression, and a
//! concurrency hammer over one shared plan.

use eugene_nn::{Layer, Linear, StagedNetwork, StagedNetworkConfig};
use eugene_tensor::{seeded_rng, xavier_uniform, Matrix, Precision};
use std::sync::Arc;

fn tiny_net(seed: u64) -> StagedNetwork {
    let config = StagedNetworkConfig {
        input_dim: 6,
        num_classes: 3,
        stage_widths: vec![vec![8], vec![10]],
        dropout: 0.0,
        input_skip: true,
    };
    StagedNetwork::new(&config, &mut seeded_rng(seed))
}

fn layer_walk_stage(
    net: &StagedNetwork,
    stage: usize,
    hidden: &Matrix,
    raw: &Matrix,
) -> (Matrix, Matrix) {
    let stage_in = if stage > 0 && net.input_skip() {
        hidden.hconcat(raw)
    } else {
        hidden.clone()
    };
    let h = net.stages()[stage].infer(&stage_in);
    let l = net.heads()[stage].infer(&h);
    (h, l)
}

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn hits_and_misses_are_counted_per_key() {
    let net = tiny_net(1);
    let stats = net.plan_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));

    let p1 = net.stage_plan(0, 4).unwrap();
    let stats = net.plan_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

    // Same key: a hit, and the very same plan object.
    let p2 = net.stage_plan(0, 4).unwrap();
    assert!(Arc::ptr_eq(&p1, &p2), "same key must reuse the plan");
    let stats = net.plan_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

    // Different batch shape and different stage: distinct plans.
    let _ = net.stage_plan(0, 8).unwrap();
    let _ = net.stage_plan(1, 4).unwrap();
    let stats = net.plan_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 3, 3));
}

#[test]
fn stages_mut_invalidates_all_plans() {
    let mut net = tiny_net(2);
    let old = net.stage_plan(0, 2).unwrap();
    let gen_before = net.plan_cache().generation();
    assert_eq!(old.generation(), gen_before);

    // Mutate a trunk weight through the pruning funnel.
    net.stages_mut()[0]
        .layers_mut()
        .iter_mut()
        .filter_map(|l| l.as_any_mut().downcast_mut::<Linear>())
        .for_each(|lin| lin.weights_mut()[(0, 0)] += 0.5);

    let stats = net.plan_cache().stats();
    assert_eq!(stats.entries, 0, "mutation must drop every cached plan");
    assert!(stats.invalidations >= 1);
    assert!(net.plan_cache().generation() > gen_before);

    // The fresh plan carries the new generation and the new weights.
    let fresh = net.stage_plan(0, 2).unwrap();
    assert!(!Arc::ptr_eq(&old, &fresh), "stale plan must not be served");
    assert_eq!(fresh.generation(), net.plan_cache().generation());
    let input = xavier_uniform(2, 6, &mut seeded_rng(3));
    let (plan_h, plan_l) = fresh.execute(&net, &input, &input);
    let (walk_h, walk_l) = layer_walk_stage(&net, 0, &input, &input);
    assert_bitwise(&plan_h, &walk_h, "post-mutation hidden");
    assert_bitwise(&plan_l, &walk_l, "post-mutation logits");
}

#[test]
fn heads_mut_and_visit_params_invalidate() {
    let mut net = tiny_net(4);
    net.stage_plan(0, 1).unwrap();
    net.stage_plan(1, 1).unwrap();
    assert_eq!(net.plan_cache().stats().entries, 2);

    net.heads_mut()[0].bias_mut()[(0, 0)] += 1.0;
    assert_eq!(net.plan_cache().stats().entries, 0, "heads_mut invalidates");

    net.stage_plan(0, 1).unwrap();
    let gen_before = net.plan_cache().generation();
    net.visit_params(&mut |_p, _g| {});
    assert_eq!(
        net.plan_cache().stats().entries,
        0,
        "optimizer access invalidates"
    );
    assert!(net.plan_cache().generation() > gen_before);
}

/// The quantize-after-compile regression: a plan compiled while a stage
/// served f32 must not survive `quantize_stages` / `set_precision` —
/// the next dispatch must compile and serve the Int8 plan.
#[test]
fn quantize_after_compile_serves_the_int8_plan() {
    let mut net = tiny_net(5);
    let f32_plan = net.stage_plan(0, 3).unwrap();
    assert_eq!(f32_plan.precision(), Precision::F32);
    let gen_f32 = f32_plan.generation();

    net.quantize_stages(&[0]);
    assert_eq!(net.stage_precision(0), Precision::Int8);
    assert_eq!(
        net.plan_cache().stats().entries,
        0,
        "quantize_stages must invalidate compiled plans"
    );

    let q_plan = net.stage_plan(0, 3).unwrap();
    assert_eq!(
        q_plan.precision(),
        Precision::Int8,
        "post-quantization dispatch must serve the Int8 plan, not the cached f32 plan"
    );
    assert!(q_plan.generation() > gen_f32, "generation tag must advance");

    // And the Int8 plan matches the quantized layer walk bitwise.
    let input = xavier_uniform(3, 6, &mut seeded_rng(6));
    let (plan_h, plan_l) = q_plan.execute(&net, &input, &input);
    let (walk_h, walk_l) = layer_walk_stage(&net, 0, &input, &input);
    assert_bitwise(&plan_h, &walk_h, "int8 hidden");
    assert_bitwise(&plan_l, &walk_l, "int8 logits");
}

/// `set_precision` reached through `stages_mut` (rather than
/// `quantize_stages`) must equally invalidate.
#[test]
fn set_precision_via_stages_mut_invalidates() {
    let mut net = tiny_net(7);
    net.stage_plan(0, 2).unwrap();
    net.stages_mut()[0]
        .layers_mut()
        .iter_mut()
        .filter_map(|l| l.as_any_mut().downcast_mut::<Linear>())
        .for_each(|lin| lin.set_precision(Precision::Int8));
    assert_eq!(net.plan_cache().stats().entries, 0);
    let plan = net.stage_plan(0, 2).unwrap();
    assert_eq!(plan.precision(), Precision::Int8);
}

/// Model reload hands out a fresh network object; its plan cache must
/// start empty — plans never travel between network instances.
#[test]
fn cloned_network_starts_with_an_empty_cache() {
    let net = tiny_net(8);
    net.stage_plan(0, 2).unwrap();
    net.stage_plan(1, 2).unwrap();
    assert_eq!(net.plan_cache().stats().entries, 2);

    let copy = net.clone();
    let stats = copy.plan_cache().stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.entries, stats.invalidations),
        (0, 0, 0, 0),
        "a reloaded/cloned model must not inherit compiled plans"
    );
    // The copy compiles its own plans and serves identically.
    let input = xavier_uniform(2, 6, &mut seeded_rng(9));
    let a = net.stage_plan(0, 2).unwrap().execute(&net, &input, &input);
    let b = copy
        .stage_plan(0, 2)
        .unwrap()
        .execute(&copy, &input, &input);
    assert_bitwise(&a.0, &b.0, "clone hidden");
    assert_bitwise(&a.1, &b.1, "clone logits");
}

/// No stale plan ever executes: every plan handed out carries the
/// cache's current generation tag, across an interleaving of compiles
/// and invalidations.
#[test]
fn served_plans_always_carry_the_current_generation() {
    let mut net = tiny_net(10);
    for round in 0..5 {
        for stage in 0..net.num_stages() {
            for rows in [1usize, 3, 7] {
                let plan = net.stage_plan(stage, rows).unwrap();
                assert_eq!(
                    plan.generation(),
                    net.plan_cache().generation(),
                    "round {round}: plan generation must match the cache"
                );
            }
        }
        // Alternate mutation paths between rounds.
        if round % 2 == 0 {
            net.heads_mut()[0].bias_mut()[(0, 0)] += 0.1;
        } else {
            net.quantize_stages(&[round % 2]);
        }
    }
}

/// Hammer one cached plan from many dispatcher threads: arena buffers
/// must never alias across concurrent executions, and every output must
/// be bitwise-stable. Run with high `--test-threads` in CI.
#[test]
fn concurrent_dispatchers_share_one_plan_without_aliasing() {
    const THREADS: usize = 8;
    const ITERS: usize = 50;
    const ROWS: usize = 4;

    let net = Arc::new(tiny_net(11));
    let plan = net.stage_plan(0, ROWS).unwrap();

    // Per-thread distinct inputs with precomputed references.
    let inputs: Vec<Matrix> = (0..THREADS)
        .map(|t| xavier_uniform(ROWS, 6, &mut seeded_rng(100 + t as u64)))
        .collect();
    let expected: Vec<(Matrix, Matrix)> = inputs
        .iter()
        .map(|input| plan.execute(&net, input, input))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let net = Arc::clone(&net);
            let plan = Arc::clone(&plan);
            let input = &inputs[t];
            let want = &expected[t];
            scope.spawn(move || {
                let mut out_h = Matrix::zeros(0, 0);
                let mut out_l = Matrix::zeros(0, 0);
                for iter in 0..ITERS {
                    plan.execute_into(&net, input, input, &mut out_h, &mut out_l);
                    for (a, b) in out_h.as_slice().iter().zip(want.0.as_slice()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "thread {t} iter {iter}: hidden corrupted under concurrency"
                        );
                    }
                    for (a, b) in out_l.as_slice().iter().zip(want.1.as_slice()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "thread {t} iter {iter}: logits corrupted under concurrency"
                        );
                    }
                }
            });
        }
    });

    // The hammer went through the shared plan: still exactly one entry,
    // no extra compiles.
    let stats = net.plan_cache().stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.misses, 1);
}

/// Concurrent lookups of the *same key* from many threads compile at
/// most once (compilation happens under the cache lock) and all see the
/// same plan object.
#[test]
fn concurrent_lookups_compile_once() {
    let net = Arc::new(tiny_net(12));
    let plans: Vec<Arc<eugene_nn::StagePlan>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let net = Arc::clone(&net);
                scope.spawn(move || net.stage_plan(1, 5).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for p in &plans[1..] {
        assert!(Arc::ptr_eq(&plans[0], p), "all threads share one plan");
    }
    assert_eq!(net.plan_cache().stats().misses, 1, "compiled exactly once");
}
