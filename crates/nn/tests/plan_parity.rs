//! Property tests pinning the compiled-plan execution path to the
//! layer-walk path **bitwise**, across random architectures, batch
//! sizes, serving precisions, and kernel tiers.
//!
//! The contract (see `crates/nn/src/compile.rs`): a [`StagePlan`] may
//! fuse bias/relu into the GEMM epilogue, pre-pack weight panels, and
//! reuse arena buffers — but every output element must carry the exact
//! bits the unfused `Sequential::infer` + `Linear::infer` walk
//! produces. CI runs this suite twice, the second pass under
//! `EUGENE_SIMD=0`, so the ambient tier covers both the vectorized and
//! scalar kernels; the forced-scalar test below additionally pins the
//! scalar tier inside a single run.
//!
//! `simd_mode` is process-global, so tests that force it serialize on
//! [`mode_lock`] and restore the ambient mode.

use eugene_nn::{Activation, Layer, Linear, Sequential, StagedNetwork, StagedNetworkConfig};
use eugene_tensor::{
    seeded_rng, set_simd_mode, simd_mode, xavier_uniform, Matrix, Precision, SimdMode,
};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests around the process-global kernel-path override.
fn mode_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Runs `body` with the kernel path forced to `mode`, restoring the
/// previous mode afterwards (panic-safe).
fn with_mode<R>(mode: SimdMode, body: impl FnOnce() -> R) -> R {
    let _guard = mode_lock();
    let before = simd_mode();
    set_simd_mode(mode);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    set_simd_mode(before);
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// The unfused oracle: one stage of the layer walk, exactly as
/// `InferenceSession::next_stage` / `stage_activations` run it.
fn layer_walk_stage(
    net: &StagedNetwork,
    stage: usize,
    hidden: &Matrix,
    raw: &Matrix,
) -> (Matrix, Matrix) {
    let stage_in = if stage > 0 && net.input_skip() {
        hidden.hconcat(raw)
    } else {
        hidden.clone()
    };
    let h = net.stages()[stage].infer(&stage_in);
    let l = net.heads()[stage].infer(&h);
    (h, l)
}

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) -> Result<(), proptest::CaseError> {
    prop_assert_eq!(a.shape(), b.shape(), "{}: shape mismatch", what);
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: element {} differs: {} vs {}",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// Walks every stage of `net` through both paths over the same batch,
/// asserting bitwise-identical hidden activations and logits at every
/// stage boundary.
fn check_all_stages(net: &StagedNetwork, input: &Matrix) -> Result<(), proptest::CaseError> {
    let mut hidden = input.clone();
    for stage in 0..net.num_stages() {
        let plan = net
            .stage_plan(stage, input.rows())
            .expect("standard stages always compile");
        prop_assert!(
            plan.fused_gemm_steps() >= 2,
            "stage {} plan should fuse trunk and head GEMMs (got {})",
            stage,
            plan.fused_gemm_steps()
        );
        let (plan_h, plan_l) = plan.execute(net, &hidden, input);
        let (walk_h, walk_l) = layer_walk_stage(net, stage, &hidden, input);
        assert_bitwise(&plan_h, &walk_h, &format!("stage {stage} hidden"))?;
        assert_bitwise(&plan_l, &walk_l, &format!("stage {stage} logits"))?;
        // Second dispatch reuses the pooled arena — must be stable.
        let (again_h, again_l) = plan.execute(net, &hidden, input);
        assert_bitwise(
            &again_h,
            &plan_h,
            &format!("stage {stage} hidden redispatch"),
        )?;
        assert_bitwise(
            &again_l,
            &plan_l,
            &format!("stage {stage} logits redispatch"),
        )?;
        hidden = walk_h;
    }
    Ok(())
}

/// Random staged-network architectures: 1–3 stages, 1–2 layers each,
/// widths straddling the kernels' tile boundaries, optional dropout
/// (which inference elides) and input-skip shortcuts.
fn arch_strategy() -> impl Strategy<Value = (StagedNetworkConfig, u64, usize)> {
    (
        (
            2usize..12,
            2usize..5,
            proptest::collection::vec(proptest::collection::vec(1usize..24, 1..3), 1..4),
        ),
        (any::<bool>(), any::<bool>(), any::<u64>(), 1usize..9),
    )
        .prop_map(
            |((input_dim, classes, widths), (skip, dropout, seed, rows))| {
                (
                    StagedNetworkConfig {
                        input_dim,
                        num_classes: classes,
                        stage_widths: widths,
                        dropout: if dropout { 0.3 } else { 0.0 },
                        input_skip: skip,
                    },
                    seed,
                    rows,
                )
            },
        )
}

fn build(config: &StagedNetworkConfig, seed: u64, rows: usize) -> (StagedNetwork, Matrix) {
    let mut rng = seeded_rng(seed);
    let net = StagedNetwork::new(config, &mut rng);
    let input = xavier_uniform(rows, config.input_dim, &mut rng);
    (net, input)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// f32 plans, ambient kernel tier (vectorized in the default CI
    /// pass, scalar in the `EUGENE_SIMD=0` pass).
    #[test]
    fn compiled_plan_matches_layer_walk_bitwise_f32((config, seed, rows) in arch_strategy()) {
        let _guard = mode_lock();
        let (net, input) = build(&config, seed, rows);
        check_all_stages(&net, &input)?;
    }

    /// Int8 plans: a random subset of stages quantized. The plan embeds
    /// the layer's own quantized pack, so parity must hold bitwise.
    #[test]
    fn compiled_plan_matches_layer_walk_bitwise_int8(
        (config, seed, rows) in arch_strategy(),
        mask in any::<u8>(),
    ) {
        let _guard = mode_lock();
        let (mut net, input) = build(&config, seed, rows);
        let quantized: Vec<usize> =
            (0..net.num_stages()).filter(|s| mask & (1 << s) != 0).collect();
        net.quantize_stages(&quantized);
        for &s in &quantized {
            prop_assert_eq!(net.stage_precision(s), Precision::Int8);
            prop_assert_eq!(
                net.stage_plan(s, rows).unwrap().precision(),
                Precision::Int8,
                "plan must be compiled at the stage's serving precision"
            );
        }
        check_all_stages(&net, &input)?;
    }

    /// The scalar tier pinned explicitly, independent of the ambient
    /// mode: plans must not bake in a kernel path — a pack built under
    /// one tier is ignored (not misused) under another.
    #[test]
    fn forced_scalar_tier_keeps_parity((config, seed, rows) in arch_strategy()) {
        let (net, input) = build(&config, seed, rows);
        with_mode(SimdMode::ForceScalar, || check_all_stages(&net, &input))?;
    }

    /// A plan compiled under the ambient (possibly vectorized) tier and
    /// then executed under the scalar tier must still match the scalar
    /// layer walk: the pre-packed panels no longer match the active
    /// tier's geometry and must fall back to on-the-fly packing.
    #[test]
    fn plan_survives_tier_flip_bitwise((config, seed, rows) in arch_strategy()) {
        let _guard = mode_lock();
        let (net, input) = build(&config, seed, rows);
        // Compile (and warm) every plan under the ambient tier.
        for stage in 0..net.num_stages() {
            net.stage_plan(stage, rows).unwrap();
        }
        drop(_guard);
        with_mode(SimdMode::ForceScalar, || check_all_stages(&net, &input))?;
    }
}

/// Stages containing tanh activations cannot fold the activation into
/// the GEMM epilogue; the compiler must emit a separate elementwise
/// step and still match the walk bitwise.
#[test]
fn tanh_stage_compiles_with_unfused_elementwise_step() {
    let _guard = mode_lock();
    let mut rng = seeded_rng(42);
    let mut block = Sequential::new();
    block.push(Linear::new(6, 10, &mut rng));
    block.push(Activation::tanh());
    block.push(Linear::new(10, 7, &mut rng));
    block.push(Activation::relu());
    let head = Linear::new(7, 3, &mut rng);
    let net = StagedNetwork::from_parts(vec![block], vec![head], 6, 3, false);

    let plan = net.stage_plan(0, 5).expect("tanh stage compiles");
    // Trunk GEMM (bias fused, tanh split off) + trunk GEMM (bias+relu
    // fused) + head GEMM (bias fused) = 3 fused GEMMs + 1 elementwise.
    assert_eq!(plan.fused_gemm_steps(), 3);
    assert_eq!(plan.num_steps(), 4);

    let input = xavier_uniform(5, 6, &mut seeded_rng(43));
    let (plan_h, plan_l) = plan.execute(&net, &input, &input);
    let stage_in = input.clone();
    let walk_h = net.stages()[0].infer(&stage_in);
    let walk_l = net.heads()[0].infer(&walk_h);
    assert_eq!(plan_h, walk_h);
    assert_eq!(plan_l, walk_l);
    for (a, b) in plan_h.as_slice().iter().zip(walk_h.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// The graph builder's reference interpreter (no fusion, no arenas)
/// agrees with the layer walk — anchoring the IR itself, not just the
/// compiled plans, to the network semantics.
#[test]
fn stage_graph_reference_interpreter_matches_layer_walk() {
    let _guard = mode_lock();
    let config = StagedNetworkConfig {
        input_dim: 5,
        num_classes: 4,
        stage_widths: vec![vec![7], vec![6, 9]],
        dropout: 0.1,
        input_skip: true,
    };
    let mut rng = seeded_rng(7);
    let net = StagedNetwork::new(&config, &mut rng);
    let input = xavier_uniform(3, 5, &mut rng);

    let resolve = |layer: eugene_nn::LayerRef| -> (Matrix, Vec<f32>) {
        match layer {
            eugene_nn::LayerRef::Trunk { stage, layer } => {
                let lin = net.stages()[stage].layers()[layer]
                    .as_any()
                    .downcast_ref::<Linear>()
                    .unwrap();
                (lin.weights().clone(), lin.bias().row(0).to_vec())
            }
            eugene_nn::LayerRef::Head { stage } => {
                let lin = &net.heads()[stage];
                (lin.weights().clone(), lin.bias().row(0).to_vec())
            }
        }
    };

    let mut hidden = input.clone();
    for stage in 0..net.num_stages() {
        let graph = eugene_nn::compile::stage_graph(&net, stage).expect("builds");
        let outputs = graph.eval_reference(&hidden, &input, &resolve);
        assert_eq!(outputs.len(), 2, "hidden + logits outputs");
        let (walk_h, walk_l) = layer_walk_stage(&net, stage, &hidden, &input);
        assert_eq!(outputs[0], walk_h, "stage {stage} hidden via interpreter");
        assert_eq!(outputs[1], walk_l, "stage {stage} logits via interpreter");
        hidden = walk_h;
    }
}
