use crate::StagedNetwork;
use eugene_data::Dataset;
use eugene_tensor::{argmax, softmax, Matrix};
use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to their labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use eugene_nn::accuracy;
/// assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must align"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, y)| p == y)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Evaluation of one stage head over a dataset: predictions, confidences,
/// and accuracy, aligned with the dataset's sample order.
///
/// This is the raw material for the paper's calibration analysis
/// (reliability diagrams, ECE) and for fitting the confidence-curve
/// regressors of §III-B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageEval {
    /// Zero-based stage index.
    pub stage: usize,
    /// Predicted class per sample.
    pub predictions: Vec<usize>,
    /// Classification confidence (max softmax probability) per sample.
    pub confidences: Vec<f32>,
    /// Full probability rows per sample (`n x num_classes`).
    pub probs: Matrix,
    /// Whether each prediction was correct.
    pub correct: Vec<bool>,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl StageEval {
    /// Builds a stage evaluation from raw logits and ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()`.
    pub fn from_logits(stage: usize, logits: &Matrix, labels: &[usize]) -> Self {
        assert_eq!(labels.len(), logits.rows(), "one label per row required");
        let n = logits.rows();
        let mut predictions = Vec::with_capacity(n);
        let mut confidences = Vec::with_capacity(n);
        let mut probs = Matrix::zeros(n, logits.cols());
        let mut correct = Vec::with_capacity(n);
        for (i, &label) in labels.iter().enumerate() {
            let p = softmax(logits.row(i));
            let pred = argmax(&p);
            predictions.push(pred);
            confidences.push(p[pred]);
            correct.push(pred == label);
            probs.row_mut(i).copy_from_slice(&p);
        }
        let accuracy = accuracy(&predictions, labels);
        Self {
            stage,
            predictions,
            confidences,
            probs,
            correct,
            accuracy,
        }
    }

    /// Builds from pre-computed probability rows instead of logits (used by
    /// the MC-dropout baseline, which averages probabilities).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != probs.rows()`.
    pub fn from_probs(stage: usize, probs: Matrix, labels: &[usize]) -> Self {
        assert_eq!(labels.len(), probs.rows(), "one label per row required");
        let n = probs.rows();
        let mut predictions = Vec::with_capacity(n);
        let mut confidences = Vec::with_capacity(n);
        let mut correct = Vec::with_capacity(n);
        for (i, &label) in labels.iter().enumerate() {
            let row = probs.row(i);
            let pred = argmax(row);
            predictions.push(pred);
            confidences.push(row[pred]);
            correct.push(pred == label);
        }
        let accuracy = accuracy(&predictions, labels);
        Self {
            stage,
            predictions,
            confidences,
            probs,
            correct,
            accuracy,
        }
    }

    /// Number of evaluated samples.
    pub fn len(&self) -> usize {
        self.predictions.len()
    }

    /// Whether the evaluation covers no samples.
    pub fn is_empty(&self) -> bool {
        self.predictions.is_empty()
    }

    /// Mean confidence over all samples.
    pub fn mean_confidence(&self) -> f32 {
        eugene_tensor::mean(&self.confidences)
    }
}

/// Evaluates every stage head of `network` on `data`.
///
/// Returns one [`StageEval`] per stage, shallowest first.
pub fn evaluate_staged(network: &StagedNetwork, data: &Dataset) -> Vec<StageEval> {
    let logits = network.predict_all(data.features());
    logits
        .iter()
        .enumerate()
        .map(|(s, l)| StageEval::from_logits(s, l, data.labels()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_edge_cases() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[0], &[1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0, 1], &[0]);
    }

    #[test]
    fn stage_eval_from_logits() {
        let logits = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 5.0], &[5.0, 0.0]]);
        let eval = StageEval::from_logits(1, &logits, &[0, 1, 1]);
        assert_eq!(eval.stage, 1);
        assert_eq!(eval.predictions, vec![0, 1, 0]);
        assert_eq!(eval.correct, vec![true, true, false]);
        assert!((eval.accuracy - 2.0 / 3.0).abs() < 1e-9);
        assert!(eval.confidences.iter().all(|&c| c > 0.99));
        assert!(eval.mean_confidence() > 0.99);
    }

    #[test]
    fn stage_eval_from_probs_matches_from_logits() {
        let logits = Matrix::from_rows(&[&[1.0, -1.0], &[-2.0, 0.5]]);
        let labels = [0, 1];
        let via_logits = StageEval::from_logits(0, &logits, &labels);
        let probs = via_logits.probs.clone();
        let via_probs = StageEval::from_probs(0, probs, &labels);
        assert_eq!(via_logits.predictions, via_probs.predictions);
        assert_eq!(via_logits.correct, via_probs.correct);
        for (a, b) in via_logits.confidences.iter().zip(&via_probs.confidences) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
