use crate::{Adam, Optimizer, StagedNetwork};
use eugene_data::Dataset;
use eugene_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Entropy-regularization coefficient `alpha` from the paper's Eq. 4,
    /// applied to every head. `0.0` trains with plain cross-entropy;
    /// calibration fine-tuning sets it non-zero.
    pub entropy_alpha: f32,
    /// Per-head `alpha` overrides; when set, takes precedence over
    /// `entropy_alpha` (the calibration controller tunes each stage head
    /// separately because their miscalibration differs).
    pub entropy_alphas: Option<Vec<f32>>,
    /// Weight on the cross-entropy term (`1.0` for normal training;
    /// calibration fine-tuning weakens the one-hot anchor).
    pub ce_weight: f32,
    /// Relative loss weight per head; `None` weights all heads equally.
    pub head_weights: Option<Vec<f32>>,
    /// Whether to reshuffle the training set each epoch.
    pub shuffle: bool,
    /// Worker threads for the parallel matmul kernels during training:
    /// `Some(1)` forces single-threaded kernels, `Some(0)` or `None`
    /// leaves the process-wide setting untouched (`0` means
    /// auto-detect). Applied via [`eugene_tensor::set_parallelism`] when
    /// [`Trainer::fit`] starts; the setting is process-wide, so the last
    /// trainer to start wins.
    #[serde(default)]
    pub parallelism: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 32,
            learning_rate: 1e-3,
            entropy_alpha: 0.0,
            entropy_alphas: None,
            ce_weight: 1.0,
            head_weights: None,
            shuffle: true,
            parallelism: None,
        }
    }
}

/// Per-epoch training telemetry returned by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean total loss (summed over heads) per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// The final epoch's mean loss.
    ///
    /// # Panics
    ///
    /// Panics if no epochs were run.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }

    /// Whether the loss decreased from first to last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Mini-batch trainer for [`StagedNetwork`]s.
///
/// All heads train jointly: the total loss is the (weighted) sum of each
/// head's entropy-regularized cross-entropy, and trunk gradients accumulate
/// across heads, exactly as the paper's staged ResNet trains its three
/// classifiers.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` or `batch_size` is zero, or if `head_weights`
    /// contains a negative weight.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.epochs > 0, "epochs must be positive");
        assert!(config.batch_size > 0, "batch_size must be positive");
        if let Some(ws) = &config.head_weights {
            assert!(
                ws.iter().all(|w| *w >= 0.0),
                "head weights must be non-negative"
            );
        }
        if let Some(alphas) = &config.entropy_alphas {
            assert!(
                alphas.iter().all(|a| a.is_finite()),
                "per-head alphas must be finite"
            );
        }
        Self { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `network` on `data`, returning per-epoch telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `head_weights` was provided with a length different from
    /// the network's stage count, or if the dataset is empty.
    pub fn fit(
        &self,
        network: &mut StagedNetwork,
        data: &Dataset,
        rng: &mut impl Rng,
    ) -> TrainReport {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        if let Some(threads) = self.config.parallelism {
            eugene_tensor::set_parallelism(threads);
        }
        let num_heads = network.num_stages();
        let weights = match &self.config.head_weights {
            Some(ws) => {
                assert_eq!(ws.len(), num_heads, "need one weight per head");
                ws.clone()
            }
            None => vec![1.0; num_heads],
        };
        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let epoch_data = if self.config.shuffle {
                data.shuffled(rng)
            } else {
                data.clone()
            };
            let mut total_loss = 0.0;
            let mut batches = 0;
            for (features, labels) in epoch_data.batches(self.config.batch_size) {
                total_loss +=
                    self.train_batch(network, &mut optimizer, &weights, &features, &labels);
                batches += 1;
            }
            epoch_losses.push(total_loss / batches.max(1) as f32);
        }
        TrainReport { epoch_losses }
    }

    fn train_batch(
        &self,
        network: &mut StagedNetwork,
        optimizer: &mut Adam,
        weights: &[f32],
        features: &Matrix,
        labels: &[usize],
    ) -> f32 {
        let logits = network.forward_train(features);
        let mut total_loss = 0.0;
        let mut grads = Vec::with_capacity(logits.len());
        for (s, stage_logits) in logits.iter().enumerate() {
            let alpha = match &self.config.entropy_alphas {
                Some(alphas) => alphas.get(s).copied().unwrap_or(self.config.entropy_alpha),
                None => self.config.entropy_alpha,
            };
            let out = crate::loss::weighted_entropy_regularized(
                stage_logits,
                labels,
                self.config.ce_weight,
                alpha,
            );
            total_loss += weights[s] * out.loss;
            grads.push(&out.grad * weights[s]);
        }
        network.backward(&grads);
        optimizer.begin_step();
        let mut index = 0;
        network.visit_params(&mut |param, grad| {
            optimizer.update(index, param, grad);
            index += 1;
        });
        total_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StagedNetworkConfig;
    use eugene_tensor::seeded_rng;

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        // Two well-separated Gaussian blobs in 2D.
        let mut rng = seeded_rng(seed);
        let mut features = Matrix::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            features[(i, 0)] = center + eugene_tensor::standard_normal(&mut rng) * 0.5;
            features[(i, 1)] = center + eugene_tensor::standard_normal(&mut rng) * 0.5;
            labels.push(class);
        }
        Dataset::new(features, labels, 2)
    }

    fn accuracy_at_stage(net: &StagedNetwork, data: &Dataset, stage: usize) -> f64 {
        let logits = net.predict_all(data.features());
        let mut correct = 0;
        for i in 0..data.len() {
            if eugene_tensor::argmax(logits[stage].row(i)) == data.label(i) {
                correct += 1;
            }
        }
        correct as f64 / data.len() as f64
    }

    #[test]
    fn trainer_learns_separable_blobs() {
        let data = blob_dataset(200, 1);
        let config = StagedNetworkConfig {
            input_dim: 2,
            num_classes: 2,
            stage_widths: vec![vec![8], vec![8]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut seeded_rng(2));
        let report = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..TrainConfig::default()
        })
        .fit(&mut net, &data, &mut seeded_rng(3));
        assert!(
            report.improved(),
            "loss should decrease: {:?}",
            report.epoch_losses
        );
        let acc = accuracy_at_stage(&net, &data, 1);
        assert!(acc > 0.95, "final-stage accuracy {acc} too low");
        let acc0 = accuracy_at_stage(&net, &data, 0);
        assert!(acc0 > 0.9, "first-stage accuracy {acc0} too low");
    }

    #[test]
    fn head_weights_zero_freezes_a_head() {
        // With weight zero on head 0, only the deeper head learns; the
        // first head should stay near chance while the second learns.
        let data = blob_dataset(200, 4);
        let config = StagedNetworkConfig {
            input_dim: 2,
            num_classes: 2,
            stage_widths: vec![vec![8], vec![8]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut seeded_rng(5));
        Trainer::new(TrainConfig {
            epochs: 25,
            batch_size: 16,
            head_weights: Some(vec![0.0, 1.0]),
            ..TrainConfig::default()
        })
        .fit(&mut net, &data, &mut seeded_rng(6));
        let acc1 = accuracy_at_stage(&net, &data, 1);
        assert!(acc1 > 0.95, "trained head accuracy {acc1}");
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let data = blob_dataset(60, 7);
        let config = StagedNetworkConfig {
            input_dim: 2,
            num_classes: 2,
            stage_widths: vec![vec![4]],
            dropout: 0.0,
            input_skip: false,
        };
        let run = |seed| {
            let mut net = StagedNetwork::new(&config, &mut seeded_rng(seed));
            let report = Trainer::new(TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            })
            .fit(&mut net, &data, &mut seeded_rng(seed + 1));
            report.epoch_losses
        };
        assert_eq!(run(8), run(8));
    }

    #[test]
    fn parallelism_knob_is_applied_and_training_stays_deterministic() {
        let data = blob_dataset(60, 14);
        let config = StagedNetworkConfig {
            input_dim: 2,
            num_classes: 2,
            stage_widths: vec![vec![4]],
            dropout: 0.0,
            input_skip: false,
        };
        let run = |threads: Option<usize>| {
            let mut net = StagedNetwork::new(&config, &mut seeded_rng(15));
            let report = Trainer::new(TrainConfig {
                epochs: 2,
                parallelism: threads,
                ..TrainConfig::default()
            })
            .fit(&mut net, &data, &mut seeded_rng(16));
            report.epoch_losses
        };
        let single = run(Some(1));
        assert_eq!(eugene_tensor::parallelism(), 1, "knob reached the kernels");
        let auto = run(Some(0));
        assert_eq!(
            single, auto,
            "kernel parallelism must not change training results"
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let config = StagedNetworkConfig {
            input_dim: 2,
            num_classes: 2,
            stage_widths: vec![vec![4]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut seeded_rng(9));
        let empty = Dataset::new(Matrix::zeros(0, 2), vec![], 2);
        Trainer::new(TrainConfig::default()).fit(&mut net, &empty, &mut seeded_rng(10));
    }

    #[test]
    #[should_panic(expected = "one weight per head")]
    fn wrong_head_weight_count_panics() {
        let data = blob_dataset(10, 11);
        let config = StagedNetworkConfig {
            input_dim: 2,
            num_classes: 2,
            stage_widths: vec![vec![4]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut seeded_rng(12));
        Trainer::new(TrainConfig {
            head_weights: Some(vec![1.0, 1.0]),
            ..TrainConfig::default()
        })
        .fit(&mut net, &data, &mut seeded_rng(13));
    }
}
