use crate::Layer;
use eugene_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Inverted dropout.
///
/// During training each element is zeroed with probability `p` and the
/// survivors are scaled by `1 / (1 - p)`, so deterministic inference is the
/// identity. [`Layer::infer_stochastic`] keeps the mask sampling active,
/// which is how the RDeepSense baseline (paper Table II) produces its
/// Monte-Carlo uncertainty estimates.
///
/// # Examples
///
/// ```
/// use eugene_nn::{Dropout, Layer};
/// use eugene_tensor::Matrix;
///
/// let layer = Dropout::new(0.5, 7);
/// let x = Matrix::filled(1, 4, 2.0);
/// // Deterministic inference leaves the input untouched.
/// assert_eq!(layer.infer(&x), x);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    p: f32,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
    #[serde(skip)]
    mask: Option<Matrix>,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a private RNG
    /// seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1), got {p}"
        );
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    fn sample_mask(&self, shape: (usize, usize), rng: &mut StdRng) -> Matrix {
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let data = (0..shape.0 * shape.1)
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        Matrix::from_vec(shape.0, shape.1, data)
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        if self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let mut rng = self.rng.clone();
        let mask = self.sample_mask(input.shape(), &mut rng);
        self.rng = rng;
        let out = input.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad_output.hadamard(mask),
            None => grad_output.clone(),
        }
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.clone()
    }

    fn infer_stochastic(&self, input: &Matrix, rng: &mut StdRng) -> Matrix {
        if self.p == 0.0 {
            return input.clone();
        }
        let mask = self.sample_mask(input.shape(), rng);
        input.hadamard(&mask)
    }

    fn describe(&self) -> String {
        format!("dropout p={}", self.p)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::seeded_rng;

    #[test]
    fn zero_probability_is_identity_everywhere() {
        let mut layer = Dropout::new(0.0, 1);
        let x = Matrix::filled(2, 3, 1.5);
        assert_eq!(layer.forward(&x), x);
        assert_eq!(layer.backward(&x), x);
        assert_eq!(layer.infer(&x), x);
    }

    #[test]
    fn training_mask_preserves_expectation() {
        let mut layer = Dropout::new(0.5, 2);
        let x = Matrix::filled(64, 64, 1.0);
        let out = layer.forward(&x);
        let mean = out.sum() / out.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean} drifted from 1.0");
    }

    #[test]
    fn backward_uses_same_mask_as_forward() {
        let mut layer = Dropout::new(0.5, 3);
        let x = Matrix::filled(4, 4, 1.0);
        let out = layer.forward(&x);
        let grad = layer.backward(&Matrix::filled(4, 4, 1.0));
        // Where forward zeroed, backward must zero; elsewhere scale matches.
        for (o, g) in out.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(o, g);
        }
    }

    #[test]
    fn stochastic_inference_varies_between_calls() {
        let layer = Dropout::new(0.5, 4);
        let x = Matrix::filled(8, 8, 1.0);
        let mut rng = seeded_rng(5);
        let a = layer.infer_stochastic(&x, &mut rng);
        let b = layer.infer_stochastic(&x, &mut rng);
        assert_ne!(a, b, "MC-dropout passes should differ");
    }

    #[test]
    fn deterministic_inference_is_identity() {
        let layer = Dropout::new(0.7, 6);
        let x = Matrix::filled(3, 3, 2.0);
        assert_eq!(layer.infer(&x), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_of_one() {
        Dropout::new(1.0, 0);
    }
}
