//! Stage compiler: lowers a stage's [`OpGraph`] to a cached, fused,
//! arena-backed kernel sequence ([`StagePlan`]).
//!
//! # What compilation buys
//!
//! The layer-walk path re-plans every dispatch: it traverses the
//! `Sequential` block, allocates a fresh intermediate per layer, packs
//! the same weight panels again, and runs bias/relu as separate passes
//! over memory the GEMM just wrote. A [`StagePlan`] does all of that
//! once, at compile time:
//!
//! - **Fusion** — single-consumer `MatMul → BiasAdd → Relu` chains
//!   collapse into one [`FusedGemm`](Step) whose elementwise tail runs
//!   inside the GEMM micro-kernel epilogue (`eugene-tensor`'s
//!   [`Matrix::matmul_epilogue_into`]).
//! - **Weight pre-packing** — the blocked kernel's column panels are
//!   built at compile time ([`eugene_tensor::PackedRhs`]) instead of on
//!   every call; Int8 layers contribute a clone of their existing
//!   [`QuantizedRhs`] pack, so the plan multiplies with byte-identical
//!   panels.
//! - **Arena reuse** — every intermediate lives in a [`PlanArena`]
//!   checked out per dispatch from a pool keyed by the plan; after
//!   warm-up a dispatch performs zero allocations.
//!
//! # The bitwise contract
//!
//! A compiled plan reproduces the layer walk **bitwise**: the fused
//! epilogue applies the identical scalar ops in the identical order as
//! the separate passes, pre-packed panels are pure layout, the Int8
//! pack is the very `Arc` the layer serves with, and dropout is
//! skipped exactly because deterministic inference is the identity.
//! `plan_parity` property-tests this across shapes, batch sizes,
//! precisions, and kernel tiers.
//!
//! # Staleness
//!
//! Plans snapshot weight *packs*, so any parameter mutation must
//! invalidate them. Every mutation path through [`StagedNetwork`]
//! (`stages_mut`, `heads_mut`, `visit_params`, `quantize_stages`)
//! bumps the cache generation and drops cached plans; a plan's
//! [`StagePlan::generation`] tag records the generation it was built
//! under, so tests can prove no stale plan is ever served.

use crate::graph::{ActKind, LayerRef, Op, OpGraph, OutputRole, SourceKind};
use crate::{Activation, Dropout, Linear, StagedNetwork};
use eugene_tensor::{Matrix, PackedRhs, Precision, QuantizedRhs};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why a stage could not be compiled. The caller falls back to the
/// layer-walk path — compilation is an optimization, never a
/// correctness requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The stage index is out of range.
    NoSuchStage(usize),
    /// A trunk layer is not expressible in the op IR (not a `Linear`,
    /// `Activation`, or `Dropout`).
    UnsupportedLayer {
        stage: usize,
        layer: usize,
        describe: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NoSuchStage(s) => write!(f, "stage {s} does not exist"),
            CompileError::UnsupportedLayer {
                stage,
                layer,
                describe,
            } => write!(
                f,
                "stage {stage} layer {layer} ({describe}) has no op-graph lowering"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Cache key: one plan per (stage, batch shape, serving precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub stage: usize,
    /// Batch rows the plan is specialized to.
    pub rows: usize,
    pub precision: Precision,
}

/// Where a step reads from: an external stage input or an arena buffer
/// written by an earlier step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    Hidden,
    Raw,
    Buf(usize),
}

/// One executable step of a compiled plan. Steps write to arena buffer
/// `dst` and only read operands produced earlier (SSA order), so
/// execution can split the arena at `dst` borrow-safely.
enum Step {
    /// `dst = [lhs | rhs]` (column concat — the input-skip shortcut).
    Concat {
        lhs: Operand,
        rhs: Operand,
        dst: usize,
        dst_cols: usize,
        lhs_cols: usize,
    },
    /// `dst = act(src · W + b)`: the fused GEMM. `bias`/`relu` record
    /// which tail ops were folded into the kernel epilogue; `packed`
    /// holds pre-built f32 panels, `quantized` the layer's own Int8
    /// pack (mutually exclusive in practice).
    FusedGemm {
        src: Operand,
        dst: usize,
        weights: LayerRef,
        bias: Option<LayerRef>,
        relu: bool,
        packed: Option<PackedRhs>,
        quantized: Option<Arc<QuantizedRhs>>,
    },
    /// `dst = src + bias` — a bias add that could not fuse (its matmul
    /// has other consumers).
    BiasAdd {
        src: Operand,
        dst: usize,
        dst_cols: usize,
        bias: LayerRef,
    },
    /// `dst = act(src)` element-wise — activations that cannot fold
    /// into an epilogue (tanh, or relu on a shared value).
    Elementwise {
        src: Operand,
        dst: usize,
        dst_cols: usize,
        kind: ActKind,
    },
    /// `dst = lhs + rhs` element-wise.
    ResidualAdd {
        lhs: Operand,
        rhs: Operand,
        dst: usize,
        dst_cols: usize,
    },
}

/// The reusable intermediate buffers for one in-flight execution of a
/// plan. Pooled inside the plan ([`StagePlan::execute_into`] checks one
/// out per dispatch and back in afterwards), so concurrent dispatchers
/// never alias a buffer and steady-state dispatches never allocate.
pub struct PlanArena {
    bufs: Vec<Matrix>,
}

impl PlanArena {
    fn new(num_bufs: usize) -> Self {
        Self {
            bufs: (0..num_bufs).map(|_| Matrix::zeros(0, 0)).collect(),
        }
    }
}

/// A compiled, shape-specialized execution plan for one stage (trunk
/// block + classifier head). Built by [`StagedNetwork::stage_plan`],
/// cached in the network's [`PlanCache`].
///
/// Weights and biases are resolved against the live network at
/// execution time via [`LayerRef`]; only the *packs* (f32 panels, Int8
/// quantization) are compile-time snapshots, guarded by the cache
/// generation.
pub struct StagePlan {
    stage: usize,
    rows: usize,
    precision: Precision,
    generation: u64,
    steps: Vec<Step>,
    num_bufs: usize,
    hidden_out: Operand,
    logits_out: Operand,
    arenas: Mutex<Vec<PlanArena>>,
}

impl StagePlan {
    /// The stage this plan executes.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// The batch shape (rows) the plan is specialized to.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The serving precision the plan was compiled for.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The cache generation this plan was compiled under. A plan is
    /// served only while its network's cache is at the same
    /// generation; any parameter mutation bumps it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of executable steps (after fusion).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of fused-GEMM steps — parity/fusion tests assert the
    /// elementwise chains actually collapsed.
    pub fn fused_gemm_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::FusedGemm { .. }))
            .count()
    }

    /// Heap bytes of pre-packed f32 weight panels carried by the plan.
    pub fn packed_bytes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::FusedGemm {
                    packed: Some(p), ..
                } => p.packed_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Executes the plan over a batch, writing the stage's hidden
    /// activations and head logits into caller-owned buffers (resized
    /// in place, so a reusing caller allocates nothing).
    ///
    /// `hidden` is the previous stage's output (the raw input for
    /// stage 0); `raw` is the network input (read only by input-skip
    /// plans). Bitwise-identical to the layer walk.
    ///
    /// # Panics
    ///
    /// Panics if the batch shape differs from [`StagePlan::rows`] or if
    /// `network` is not the network this plan was compiled from.
    pub fn execute_into(
        &self,
        network: &StagedNetwork,
        hidden: &Matrix,
        raw: &Matrix,
        out_hidden: &mut Matrix,
        out_logits: &mut Matrix,
    ) {
        assert_eq!(
            hidden.rows(),
            self.rows,
            "plan compiled for {} rows, dispatched {}",
            self.rows,
            hidden.rows()
        );
        let mut arena = {
            let mut pool = self.arenas.lock().expect("arena pool poisoned");
            pool.pop()
        }
        .unwrap_or_else(|| PlanArena::new(self.num_bufs));

        for step in &self.steps {
            self.run_step(step, network, hidden, raw, &mut arena);
        }
        let copy_out = |src: Operand, dst: &mut Matrix, arena: &PlanArena| {
            let src = operand_ref(src, hidden, raw, &arena.bufs);
            dst.reset_zeroed(src.rows(), src.cols());
            dst.as_mut_slice().copy_from_slice(src.as_slice());
        };
        copy_out(self.hidden_out, out_hidden, &arena);
        copy_out(self.logits_out, out_logits, &arena);
        self.arenas.lock().expect("arena pool poisoned").push(arena);
    }

    /// Allocating convenience wrapper over [`StagePlan::execute_into`]:
    /// returns `(hidden, logits)`.
    pub fn execute(
        &self,
        network: &StagedNetwork,
        hidden: &Matrix,
        raw: &Matrix,
    ) -> (Matrix, Matrix) {
        let mut out_hidden = Matrix::zeros(0, 0);
        let mut out_logits = Matrix::zeros(0, 0);
        self.execute_into(network, hidden, raw, &mut out_hidden, &mut out_logits);
        (out_hidden, out_logits)
    }

    fn run_step(
        &self,
        step: &Step,
        network: &StagedNetwork,
        hidden: &Matrix,
        raw: &Matrix,
        arena: &mut PlanArena,
    ) {
        let rows = self.rows;
        match *step {
            Step::Concat {
                lhs,
                rhs,
                dst,
                dst_cols,
                lhs_cols,
            } => {
                let (head, tail) = arena.bufs.split_at_mut(dst);
                let l = operand_ref(lhs, hidden, raw, head);
                let r = operand_ref(rhs, hidden, raw, head);
                let out = &mut tail[0];
                out.reset_zeroed(rows, dst_cols);
                for row in 0..rows {
                    out.row_mut(row)[..lhs_cols].copy_from_slice(l.row(row));
                    out.row_mut(row)[lhs_cols..].copy_from_slice(r.row(row));
                }
            }
            Step::FusedGemm {
                src,
                dst,
                weights,
                bias,
                relu,
                ref packed,
                ref quantized,
            } => {
                let lin = resolve_linear(network, weights);
                let bias_row = bias.map(|b| resolve_linear(network, b).bias().row(0));
                let (head, tail) = arena.bufs.split_at_mut(dst);
                let x = operand_ref(src, hidden, raw, head);
                let out = &mut tail[0];
                match quantized {
                    Some(q) => {
                        // Generation invalidation guarantees the layer
                        // still serves this exact pack.
                        debug_assert!(
                            lin.quantized_pack()
                                .is_some_and(|p| std::ptr::eq(p, q.as_ref())),
                            "Int8 plan outlived its weight pack"
                        );
                        x.matmul_quantized_epilogue_into(q, bias_row, relu, out);
                    }
                    None => {
                        x.matmul_epilogue_into(lin.weights(), packed.as_ref(), bias_row, relu, out);
                    }
                }
            }
            Step::BiasAdd {
                src,
                dst,
                dst_cols,
                bias,
            } => {
                let b = resolve_linear(network, bias).bias();
                let (head, tail) = arena.bufs.split_at_mut(dst);
                let x = operand_ref(src, hidden, raw, head);
                let out = &mut tail[0];
                out.reset_zeroed(rows, dst_cols);
                out.as_mut_slice().copy_from_slice(x.as_slice());
                out.add_row_broadcast(b.row(0));
            }
            Step::Elementwise {
                src,
                dst,
                dst_cols,
                kind,
            } => {
                let (head, tail) = arena.bufs.split_at_mut(dst);
                let x = operand_ref(src, hidden, raw, head);
                let out = &mut tail[0];
                out.reset_zeroed(rows, dst_cols);
                for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    *o = kind.apply(v);
                }
            }
            Step::ResidualAdd {
                lhs,
                rhs,
                dst,
                dst_cols,
            } => {
                let (head, tail) = arena.bufs.split_at_mut(dst);
                let l = operand_ref(lhs, hidden, raw, head);
                let r = operand_ref(rhs, hidden, raw, head);
                let out = &mut tail[0];
                out.reset_zeroed(rows, dst_cols);
                for ((o, &a), &b) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(l.as_slice())
                    .zip(r.as_slice())
                {
                    *o = a + b;
                }
            }
        }
    }
}

fn operand_ref<'a>(
    op: Operand,
    hidden: &'a Matrix,
    raw: &'a Matrix,
    bufs: &'a [Matrix],
) -> &'a Matrix {
    match op {
        Operand::Hidden => hidden,
        Operand::Raw => raw,
        Operand::Buf(i) => &bufs[i],
    }
}

fn resolve_linear(network: &StagedNetwork, layer: LayerRef) -> &Linear {
    match layer {
        LayerRef::Trunk { stage, layer } => network.stages()[stage].layers()[layer]
            .as_any()
            .downcast_ref::<Linear>()
            .expect("plan layer ref must resolve to a Linear"),
        LayerRef::Head { stage } => &network.heads()[stage],
    }
}

/// Builds the op graph for one stage of `network`: the input-skip
/// concat (when applicable), the trunk block lowered layer by layer
/// (dropout elided — deterministic inference is the identity), and the
/// classifier head, with `Hidden` and `Logits` outputs.
pub fn stage_graph(network: &StagedNetwork, stage: usize) -> Result<OpGraph, CompileError> {
    if stage >= network.num_stages() {
        return Err(CompileError::NoSuchStage(stage));
    }
    let mut g = OpGraph::new();
    let hidden_cols = if stage == 0 {
        network.input_dim()
    } else {
        network.stage_output_dim(stage - 1)
    };
    let mut cur = g.add(Op::Source(SourceKind::Hidden), hidden_cols);
    let mut cur_cols = hidden_cols;
    if stage > 0 && network.input_skip() {
        let raw = g.add(Op::Source(SourceKind::RawInput), network.input_dim());
        cur_cols += network.input_dim();
        cur = g.add(Op::Concat { lhs: cur, rhs: raw }, cur_cols);
    }
    for (i, layer) in network.stages()[stage].layers().iter().enumerate() {
        let any = layer.as_any();
        if let Some(lin) = any.downcast_ref::<Linear>() {
            let r = LayerRef::Trunk { stage, layer: i };
            cur_cols = lin.out_dim();
            cur = g.add(
                Op::MatMul {
                    input: cur,
                    layer: r,
                },
                cur_cols,
            );
            cur = g.add(
                Op::BiasAdd {
                    input: cur,
                    layer: r,
                },
                cur_cols,
            );
        } else if let Some(act) = any.downcast_ref::<Activation>() {
            cur = g.add(
                Op::Activation {
                    input: cur,
                    kind: act.act_kind(),
                },
                cur_cols,
            );
        } else if any.downcast_ref::<Dropout>().is_some() {
            // Deterministic inference through dropout is the identity.
        } else {
            return Err(CompileError::UnsupportedLayer {
                stage,
                layer: i,
                describe: layer.describe(),
            });
        }
    }
    g.add(
        Op::Output {
            input: cur,
            role: OutputRole::Hidden,
        },
        cur_cols,
    );
    let head = LayerRef::Head { stage };
    let classes = network.num_classes();
    let hm = g.add(
        Op::MatMul {
            input: cur,
            layer: head,
        },
        classes,
    );
    let hb = g.add(
        Op::BiasAdd {
            input: hm,
            layer: head,
        },
        classes,
    );
    g.add(
        Op::Output {
            input: hb,
            role: OutputRole::Logits,
        },
        classes,
    );
    Ok(g)
}

/// Compiles `graph` (one stage of `network`) into a [`StagePlan`]
/// specialized to `rows` batch rows, fusing single-consumer
/// `MatMul → BiasAdd → Relu` chains into GEMM-epilogue steps and
/// snapshotting weight packs.
pub fn compile_graph(
    network: &StagedNetwork,
    graph: &OpGraph,
    stage: usize,
    rows: usize,
    generation: u64,
) -> StagePlan {
    assert!(rows > 0, "plans are specialized to a positive batch shape");
    let n = graph.len();
    let counts = graph.consumer_counts();
    // Single consumer of each node, when unique.
    let mut sole_consumer: Vec<Option<NodeIdx>> = vec![None; n];
    for (id, node) in graph.nodes().iter().enumerate() {
        for input in node.op.inputs() {
            sole_consumer[input] = if counts[input] == 1 { Some(id) } else { None };
        }
    }
    let mut steps = Vec::new();
    let mut val: Vec<Option<Operand>> = vec![None; n];
    let mut fused = vec![false; n];
    let mut num_bufs = 0usize;
    let mut hidden_out = None;
    let mut logits_out = None;
    let mut alloc_buf = || {
        let b = num_bufs;
        num_bufs += 1;
        b
    };
    for id in graph.topo_order() {
        if fused[id] {
            continue;
        }
        let node = &graph.nodes()[id];
        match node.op {
            Op::Source(SourceKind::Hidden) => val[id] = Some(Operand::Hidden),
            Op::Source(SourceKind::RawInput) => val[id] = Some(Operand::Raw),
            Op::Concat { lhs, rhs } => {
                let dst = alloc_buf();
                steps.push(Step::Concat {
                    lhs: val[lhs].expect("input scheduled"),
                    rhs: val[rhs].expect("input scheduled"),
                    dst,
                    dst_cols: node.cols,
                    lhs_cols: graph.nodes()[lhs].cols,
                });
                val[id] = Some(Operand::Buf(dst));
            }
            Op::MatMul { input, layer } => {
                // Greedy epilogue fusion along the single-consumer
                // chain: matmul [+ bias] [+ relu].
                let mut last = id;
                let mut bias = None;
                let mut relu = false;
                if let Some(next) = sole_consumer[last] {
                    if let Op::BiasAdd {
                        input: bi,
                        layer: bl,
                    } = graph.nodes()[next].op
                    {
                        if bi == last {
                            bias = Some(bl);
                            fused[next] = true;
                            last = next;
                        }
                    }
                }
                if let Some(next) = sole_consumer[last] {
                    if let Op::Activation {
                        input: ai,
                        kind: ActKind::Relu,
                    } = graph.nodes()[next].op
                    {
                        if ai == last {
                            relu = true;
                            fused[next] = true;
                            last = next;
                        }
                    }
                }
                let lin = resolve_linear(network, layer);
                let quantized = lin.quantized_arc();
                let packed = if quantized.is_none() {
                    Some(lin.weights().prepacked_rhs())
                } else {
                    None
                };
                let dst = alloc_buf();
                steps.push(Step::FusedGemm {
                    src: val[input].expect("input scheduled"),
                    dst,
                    weights: layer,
                    bias,
                    relu,
                    packed,
                    quantized,
                });
                val[last] = Some(Operand::Buf(dst));
                val[id] = val[last];
            }
            Op::BiasAdd { input, layer } => {
                let dst = alloc_buf();
                steps.push(Step::BiasAdd {
                    src: val[input].expect("input scheduled"),
                    dst,
                    dst_cols: node.cols,
                    bias: layer,
                });
                val[id] = Some(Operand::Buf(dst));
            }
            Op::Activation { input, kind } => {
                let dst = alloc_buf();
                steps.push(Step::Elementwise {
                    src: val[input].expect("input scheduled"),
                    dst,
                    dst_cols: node.cols,
                    kind,
                });
                val[id] = Some(Operand::Buf(dst));
            }
            Op::ResidualAdd { lhs, rhs } => {
                let dst = alloc_buf();
                steps.push(Step::ResidualAdd {
                    lhs: val[lhs].expect("input scheduled"),
                    rhs: val[rhs].expect("input scheduled"),
                    dst,
                    dst_cols: node.cols,
                });
                val[id] = Some(Operand::Buf(dst));
            }
            Op::Output { input, role } => {
                let v = val[input].expect("input scheduled");
                val[id] = Some(v);
                match role {
                    OutputRole::Hidden => hidden_out = Some(v),
                    OutputRole::Logits => logits_out = Some(v),
                }
            }
        }
    }
    let hidden_out = hidden_out.expect("stage graph must emit a Hidden output");
    let logits_out = logits_out.expect("stage graph must emit a Logits output");
    StagePlan {
        stage,
        rows,
        precision: network.stage_precision(stage),
        generation,
        steps,
        num_bufs,
        hidden_out,
        logits_out,
        arenas: Mutex::new(Vec::new()),
    }
}

type NodeIdx = usize;

/// Point-in-time counters for a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served by an already-compiled, current-generation plan.
    pub hits: u64,
    /// Lookups that compiled a new plan.
    pub misses: u64,
    /// Generation bumps (each drops every cached plan).
    pub invalidations: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Current generation tag.
    pub generation: u64,
}

/// The per-network compiled-plan cache: `(stage, rows, precision)` →
/// [`StagePlan`], guarded by a generation counter that every parameter
/// mutation bumps.
///
/// Cloning a network clones this as an **empty** cache — plans
/// snapshot packs of the network they were compiled from, so they
/// must not travel to a copy.
pub struct PlanCache {
    generation: AtomicU64,
    plans: Mutex<HashMap<PlanKey, Arc<StagePlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    pub fn new() -> Self {
        Self {
            generation: AtomicU64::new(0),
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The current generation tag. Plans compiled under an older
    /// generation are never served.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Drops every cached plan and bumps the generation — called by
    /// every parameter-mutation path on [`StagedNetwork`].
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.plans.lock().expect("plan cache poisoned").clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.plans.lock().expect("plan cache poisoned").len(),
            generation: self.generation(),
        }
    }

    /// Looks up (or compiles and caches) the plan for `key` against
    /// `network`. Compilation happens under the cache lock, so
    /// concurrent dispatchers never compile the same plan twice.
    pub fn get_or_compile(
        &self,
        network: &StagedNetwork,
        key: PlanKey,
    ) -> Result<Arc<StagePlan>, CompileError> {
        let generation = self.generation();
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some(plan) = plans.get(&key) {
            if plan.generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(plan));
            }
            // Defensive: invalidate() clears eagerly, so a stale entry
            // should be unreachable; treat one as a miss regardless.
            plans.remove(&key);
        }
        let graph = stage_graph(network, key.stage)?;
        let plan = Arc::new(compile_graph(
            network, &graph, key.stage, key.rows, generation,
        ));
        self.misses.fetch_add(1, Ordering::Relaxed);
        plans.insert(key, Arc::clone(&plan));
        Ok(plan)
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for PlanCache {
    /// A cloned network starts with a fresh, empty cache: cached plans
    /// snapshot weight packs of the original and must not be served by
    /// the copy.
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PlanCache(gen {}, {} entries, {} hits / {} misses / {} invalidations)",
            s.generation, s.entries, s.hits, s.misses, s.invalidations
        )
    }
}
