use crate::Layer;
use eugene_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// An element-wise activation layer.
///
/// # Examples
///
/// ```
/// use eugene_nn::{Activation, Layer};
/// use eugene_tensor::Matrix;
///
/// let relu = Activation::relu();
/// let out = relu.infer(&Matrix::from_rows(&[&[-1.0, 2.0]]));
/// assert_eq!(out, Matrix::from_rows(&[&[0.0, 2.0]]));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Activation {
    kind: ActivationKind,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ActivationKind {
    Relu,
    Tanh,
}

impl Activation {
    /// Rectified linear unit, the paper networks' hidden activation.
    pub fn relu() -> Self {
        Self {
            kind: ActivationKind::Relu,
            cached_input: None,
        }
    }

    /// Hyperbolic tangent.
    pub fn tanh() -> Self {
        Self {
            kind: ActivationKind::Tanh,
            cached_input: None,
        }
    }

    /// The op-graph lowering of this activation — the stage compiler
    /// maps layers onto [`crate::graph::ActKind`] nodes.
    pub(crate) fn act_kind(&self) -> crate::graph::ActKind {
        match self.kind {
            ActivationKind::Relu => crate::graph::ActKind::Relu,
            ActivationKind::Tanh => crate::graph::ActKind::Tanh,
        }
    }

    fn apply(&self, x: f32) -> f32 {
        match self.kind {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
        }
    }

    fn derivative(&self, x: f32) -> f32 {
        match self.kind {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Activation");
        input.zip_with(grad_output, |x, g| self.derivative(x) * g)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.map(|x| self.apply(x))
    }

    fn describe(&self) -> String {
        match self.kind {
            ActivationKind::Relu => "relu".to_owned(),
            ActivationKind::Tanh => "tanh".to_owned(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let relu = Activation::relu();
        let out = relu.infer(&Matrix::from_rows(&[&[-2.0, 0.0, 3.0]]));
        assert_eq!(out, Matrix::from_rows(&[&[0.0, 0.0, 3.0]]));
    }

    #[test]
    fn tanh_is_bounded() {
        let tanh = Activation::tanh();
        let out = tanh.infer(&Matrix::from_rows(&[&[-100.0, 100.0]]));
        assert!((out[(0, 0)] + 1.0).abs() < 1e-5);
        assert!((out[(0, 1)] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn backward_matches_finite_differences() {
        for layer_fn in [Activation::relu, Activation::tanh] {
            let mut layer = layer_fn();
            let input = Matrix::from_rows(&[&[0.4, -0.6, 1.2]]);
            layer.forward(&input);
            let grad = layer.backward(&Matrix::filled(1, 3, 1.0));
            let eps = 1e-3;
            for c in 0..3 {
                let mut plus = input.clone();
                plus[(0, c)] += eps;
                let mut minus = input.clone();
                minus[(0, c)] -= eps;
                let numeric = (layer.infer(&plus).sum() - layer.infer(&minus).sum()) / (2.0 * eps);
                assert!(
                    (grad[(0, c)] - numeric).abs() < 1e-2,
                    "{}: grad {} vs numeric {numeric}",
                    layer.describe(),
                    grad[(0, c)]
                );
            }
        }
    }

    #[test]
    fn activation_has_no_params() {
        let mut relu = Activation::relu();
        let mut count = 0;
        relu.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 0);
        assert_eq!(relu.param_count(), 0);
    }
}
