use crate::Layer;
use eugene_tensor::{xavier_uniform, Matrix, Precision, QuantizedRhs};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A fully connected layer: `y = x W + b`.
///
/// Weights are `in_dim x out_dim` so a `batch x in_dim` activation matrix
/// multiplies on the left.
///
/// # Examples
///
/// ```
/// use eugene_nn::{Layer, Linear};
/// use eugene_tensor::{seeded_rng, Matrix};
///
/// let layer = Linear::new(3, 2, &mut seeded_rng(0));
/// let out = layer.infer(&Matrix::zeros(4, 3));
/// assert_eq!(out.shape(), (4, 2));
/// ```
/// # Precision
///
/// A layer normally runs f32 kernels. [`Linear::set_precision`] with
/// [`Precision::Int8`] packs the weights into a [`QuantizedRhs`] once;
/// inference then runs the i8 GEMM tier (activations quantized per row
/// on the fly). The pack is serving-time state: it is never serialized
/// (rebuilt via `set_precision` after load) and is invalidated by any
/// weight mutation. Training always uses the f32 weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weights: Matrix,
    bias: Matrix,
    grad_weights: Matrix,
    grad_bias: Matrix,
    #[serde(skip)]
    cached_input: Option<Matrix>,
    /// Packed quantized weights when serving at `Precision::Int8`;
    /// shared so cloning a serving network does not repack.
    #[serde(skip)]
    quantized: Option<Arc<QuantizedRhs>>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        Self {
            weights: xavier_uniform(in_dim, out_dim, rng),
            bias: Matrix::zeros(1, out_dim),
            grad_weights: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            cached_input: None,
            quantized: None,
        }
    }

    /// Creates a layer from explicit weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x weights.cols()`.
    pub fn from_parts(weights: Matrix, bias: Matrix) -> Self {
        assert_eq!(
            bias.shape(),
            (1, weights.cols()),
            "bias must be 1x{} (got {}x{})",
            weights.cols(),
            bias.rows(),
            bias.cols()
        );
        let (in_dim, out_dim) = weights.shape();
        Self {
            weights,
            bias,
            grad_weights: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            cached_input: None,
            quantized: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix (`in_dim x out_dim`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias row vector (`1 x out_dim`).
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Mutable weight access, used by pruning. Drops any quantized pack:
    /// a pack built from the old weights would silently serve stale
    /// parameters.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        self.quantized = None;
        &mut self.weights
    }

    /// Mutable bias access, used by pruning.
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.bias
    }

    /// The precision this layer serves at: [`Precision::Int8`] when a
    /// quantized weight pack is installed, [`Precision::F32`] otherwise.
    pub fn precision(&self) -> Precision {
        if self.quantized.is_some() {
            Precision::Int8
        } else {
            Precision::F32
        }
    }

    /// The installed quantized weight pack, if serving at i8 — e.g. for
    /// reporting its packed footprint.
    pub fn quantized_pack(&self) -> Option<&QuantizedRhs> {
        self.quantized.as_deref()
    }

    /// A shared handle to the installed pack, if any. The stage
    /// compiler embeds this in Int8 plans so a compiled dispatch
    /// multiplies with the byte-identical panels the layer walk uses.
    pub(crate) fn quantized_arc(&self) -> Option<Arc<QuantizedRhs>> {
        self.quantized.clone()
    }

    /// Switches the serving precision. `Int8` packs the current weights
    /// into the quantized GEMM layout (a no-op if already packed); `F32`
    /// drops the pack. Training is unaffected either way — gradients
    /// always flow through the f32 weights.
    pub fn set_precision(&mut self, precision: Precision) {
        match precision {
            Precision::F32 => self.quantized = None,
            Precision::Int8 => {
                if self.quantized.is_none() {
                    self.quantized = Some(Arc::new(self.weights.quantized_rhs()));
                }
            }
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Linear");
        // dW = x^T g, accumulated so multi-head trunks can sum head grads.
        self.grad_weights += &input.t_matmul(grad_output);
        self.grad_bias += &Matrix::row_vector(&grad_output.sum_rows());
        grad_output.matmul_t(&self.weights)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = match &self.quantized {
            Some(q) => input.matmul_quantized(q),
            None => input.matmul(&self.weights),
        };
        out.add_row_broadcast(self.bias.row(0));
        out
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        // The optimizer mutates weights through this hook, so any
        // quantized pack is stale afterwards.
        self.quantized = None;
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn describe(&self) -> String {
        format!("linear {}->{}", self.in_dim(), self.out_dim())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::seeded_rng;

    #[test]
    fn forward_applies_weights_and_bias() {
        let weights = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let bias = Matrix::row_vector(&[0.5, -0.5]);
        let layer = Linear::from_parts(weights, bias);
        let out = layer.infer(&Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(out, Matrix::from_rows(&[&[3.5, 7.5]]));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = seeded_rng(1);
        let mut layer = Linear::new(3, 2, &mut rng);
        let input = Matrix::from_rows(&[&[0.3, -0.7, 0.2], &[1.1, 0.4, -0.5]]);
        // Loss = sum(output), so dL/doutput = ones.
        let ones = Matrix::filled(2, 2, 1.0);
        layer.forward(&input);
        let grad_in = layer.backward(&ones);

        let eps = 1e-3;
        // Check input gradient at a couple of coordinates.
        for &(r, c) in &[(0usize, 0usize), (1, 2)] {
            let mut plus = input.clone();
            plus[(r, c)] += eps;
            let mut minus = input.clone();
            minus[(r, c)] -= eps;
            let f_plus = layer.infer(&plus).sum();
            let f_minus = layer.infer(&minus).sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (grad_in[(r, c)] - numeric).abs() < 1e-2,
                "input grad ({r},{c}): analytic {} vs numeric {numeric}",
                grad_in[(r, c)]
            );
        }

        // Check a weight gradient coordinate.
        let analytic = {
            let mut found = None;
            layer.visit_params(&mut |_p, g| {
                if found.is_none() {
                    found = Some(g[(1, 0)]);
                }
            });
            found.unwrap()
        };
        let numeric = {
            let mut plus = layer.clone();
            plus.weights_mut()[(1, 0)] += eps;
            let mut minus = layer.clone();
            minus.weights_mut()[(1, 0)] -= eps;
            (plus.infer(&input).sum() - minus.infer(&input).sum()) / (2.0 * eps)
        };
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "weight grad: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = seeded_rng(2);
        let mut layer = Linear::new(2, 2, &mut rng);
        let input = Matrix::identity(2);
        let g = Matrix::filled(2, 2, 1.0);
        layer.forward(&input);
        layer.backward(&g);
        let mut first = Matrix::zeros(2, 2);
        layer.visit_params(&mut |_p, grad| {
            if grad.shape() == (2, 2) {
                first = grad.clone();
            }
        });
        layer.forward(&input);
        layer.backward(&g);
        layer.visit_params(&mut |_p, grad| {
            if grad.shape() == (2, 2) {
                assert_eq!(grad.as_slice()[0], 2.0 * first.as_slice()[0]);
            }
        });
    }

    #[test]
    fn param_count_counts_weights_and_bias() {
        let layer = Linear::new(3, 4, &mut seeded_rng(3));
        assert_eq!(layer.param_count(), 3 * 4 + 4);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut layer = Linear::new(2, 2, &mut seeded_rng(4));
        layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn describe_mentions_shape() {
        let layer = Linear::new(8, 16, &mut seeded_rng(5));
        assert_eq!(layer.describe(), "linear 8->16");
    }

    #[test]
    fn quantized_inference_tracks_f32() {
        let mut rng = seeded_rng(6);
        let mut layer = Linear::new(17, 9, &mut rng);
        let input = xavier_uniform(5, 17, &mut rng);
        let f32_out = layer.infer(&input);
        assert_eq!(layer.precision(), Precision::F32);

        layer.set_precision(Precision::Int8);
        assert_eq!(layer.precision(), Precision::Int8);
        let q_out = layer.infer(&input);
        assert_eq!(q_out.shape(), f32_out.shape());
        for (q, f) in q_out.as_slice().iter().zip(f32_out.as_slice()) {
            assert!((q - f).abs() < 0.05, "quantized output drifted: {q} vs {f}");
        }

        layer.set_precision(Precision::F32);
        assert_eq!(layer.infer(&input), f32_out, "f32 path restored bitwise");
    }

    #[test]
    fn weight_mutation_invalidates_quantized_pack() {
        let mut rng = seeded_rng(7);
        let mut layer = Linear::new(4, 3, &mut rng);
        layer.set_precision(Precision::Int8);
        layer.weights_mut()[(0, 0)] += 1.0;
        assert_eq!(
            layer.precision(),
            Precision::F32,
            "stale pack must be dropped on weight mutation"
        );

        layer.set_precision(Precision::Int8);
        layer.visit_params(&mut |_p, _g| {});
        assert_eq!(
            layer.precision(),
            Precision::F32,
            "optimizer access drops the pack too"
        );
    }

    #[test]
    fn training_still_runs_f32_while_quantized() {
        let mut rng = seeded_rng(8);
        let mut plain = Linear::new(3, 2, &mut rng);
        let mut quant = plain.clone();
        quant.set_precision(Precision::Int8);
        let input = Matrix::from_rows(&[&[0.2, -0.4, 0.9]]);
        let g = Matrix::filled(1, 2, 1.0);
        plain.forward(&input);
        quant.forward(&input);
        let gi_plain = plain.backward(&g);
        let gi_quant = quant.backward(&g);
        assert_eq!(gi_plain, gi_quant, "backward is precision-independent");
    }
}
