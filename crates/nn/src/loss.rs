//! Classification losses, including the paper's entropy-regularized
//! objective.
//!
//! The fine-tuning loss from Eq. 4 of the paper is
//!
//! ```text
//! L = CE(p_i, y_i) + alpha * H(p_i)
//! ```
//!
//! where `CE` is softmax cross-entropy and `H` is the Shannon entropy of
//! the predicted distribution. Because training *minimizes* `L`, a
//! **negative** `alpha` rewards entropy and flattens predictions (lowering
//! confidence — the fix for the usual overconfident, overfit network),
//! while a **positive** `alpha` penalizes entropy and sharpens predictions
//! (raising confidence when the network underestimates it). The paper
//! states the tuning rule in terms of which side needs correcting; the
//! calibration crate auto-tunes the sign from the measured
//! accuracy/confidence gap, so users never pick it by hand.

use eugene_tensor::{entropy, softmax, Matrix};

/// Loss value and gradient with respect to the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `dL/d(logits)`, same shape as the logits, already divided by the
    /// batch size.
    pub grad: Matrix,
}

/// Softmax cross-entropy, averaged over the batch.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
///
/// # Examples
///
/// ```
/// use eugene_nn::loss::cross_entropy;
/// use eugene_tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[&[5.0, -5.0]]);
/// let confident_right = cross_entropy(&logits, &[0]);
/// let confident_wrong = cross_entropy(&logits, &[1]);
/// assert!(confident_right.loss < confident_wrong.loss);
/// ```
pub fn cross_entropy(logits: &Matrix, labels: &[usize]) -> LossOutput {
    entropy_regularized(logits, labels, 0.0)
}

/// The paper's Eq. 4: softmax cross-entropy plus `alpha` times the entropy
/// of the predictive distribution.
///
/// The gradient of the entropy term with respect to logit `z_j` is
/// `-p_j (ln p_j + H(p))`, derived from the softmax Jacobian.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn entropy_regularized(logits: &Matrix, labels: &[usize], alpha: f32) -> LossOutput {
    weighted_entropy_regularized(logits, labels, 1.0, alpha)
}

/// Generalization of [`entropy_regularized`] with a weight on the
/// cross-entropy term: `L = ce_weight * CE + alpha * H`.
///
/// Calibration fine-tuning uses a small `ce_weight`: on a memorized
/// training set the one-hot CE gradient keeps pushing confidence back to
/// saturation, so the anchor must be weakened for the entropy term to
/// reach the paper's "underestimation and overestimation roughly cancel
/// out" fixed point.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn weighted_entropy_regularized(
    logits: &Matrix,
    labels: &[usize],
    ce_weight: f32,
    alpha: f32,
) -> LossOutput {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "need one label per logit row ({} labels, {} rows)",
        labels.len(),
        logits.rows()
    );
    let batch = logits.rows().max(1) as f32;
    let classes = logits.cols();
    let mut grad = Matrix::zeros(logits.rows(), classes);
    let mut total = 0.0;
    for (i, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let probs = softmax(logits.row(i));
        let h = entropy(&probs);
        // Clamp to avoid -inf on exactly-zero probabilities.
        total += ce_weight * -(probs[label].max(1e-12)).ln() + alpha * h;
        let row = grad.row_mut(i);
        for (j, p) in probs.iter().enumerate() {
            let ce_grad = p - if j == label { 1.0 } else { 0.0 };
            let ent_grad = -p * (p.max(1e-12).ln() + h);
            row[j] = (ce_weight * ce_grad + alpha * ent_grad) / batch;
        }
    }
    LossOutput {
        loss: total / batch,
        grad,
    }
}

/// Mean squared error between `predictions` and `targets`, averaged over
/// all elements; gradient is with respect to `predictions`.
///
/// Used by the RDeepSense-style distribution estimation discussion
/// (paper §II-D) and the profiler's regression fitting.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mean_squared_error(predictions: &Matrix, targets: &Matrix) -> LossOutput {
    assert_eq!(
        predictions.shape(),
        targets.shape(),
        "MSE requires equal shapes"
    );
    let n = predictions.len().max(1) as f32;
    let diff = predictions - targets;
    let loss = diff.frobenius_sq() / n;
    let grad = &diff * (2.0 / n);
    LossOutput { loss, grad }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(logits: &Matrix, labels: &[usize], alpha: f32, r: usize, c: usize) -> f32 {
        let eps = 1e-3;
        let mut plus = logits.clone();
        plus[(r, c)] += eps;
        let mut minus = logits.clone();
        minus[(r, c)] -= eps;
        (entropy_regularized(&plus, labels, alpha).loss
            - entropy_regularized(&minus, labels, alpha).loss)
            / (2.0 * eps)
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.2, -1.3, 0.8], &[2.0, 0.1, -0.4]]);
        let labels = [2, 0];
        let out = cross_entropy(&logits, &labels);
        for r in 0..2 {
            for c in 0..3 {
                let numeric = numeric_grad(&logits, &labels, 0.0, r, c);
                assert!(
                    (out.grad[(r, c)] - numeric).abs() < 1e-3,
                    "grad ({r},{c}): analytic {} vs numeric {numeric}",
                    out.grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn entropy_regularizer_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.5, -0.5, 1.5]]);
        let labels = [1];
        for alpha in [0.5_f32, -0.5] {
            let out = entropy_regularized(&logits, &labels, alpha);
            for c in 0..3 {
                let numeric = numeric_grad(&logits, &labels, alpha, 0, c);
                assert!(
                    (out.grad[(0, c)] - numeric).abs() < 1e-3,
                    "alpha {alpha} grad (0,{c}): analytic {} vs numeric {numeric}",
                    out.grad[(0, c)]
                );
            }
        }
    }

    #[test]
    fn positive_alpha_penalizes_confident_predictions_less() {
        // H is larger for uniform predictions, so with alpha > 0 a uniform
        // prediction costs more entropy penalty than a peaked one; the
        // regularizer value itself must match alpha * H.
        let peaked = Matrix::from_rows(&[&[10.0, 0.0]]);
        let labels = [0];
        let base = cross_entropy(&peaked, &labels).loss;
        let reg = entropy_regularized(&peaked, &labels, 1.0).loss;
        let probs = eugene_tensor::softmax(peaked.row(0));
        let h = eugene_tensor::entropy(&probs);
        assert!((reg - base - h).abs() < 1e-5);
    }

    #[test]
    fn negative_alpha_flattens_and_positive_alpha_sharpens() {
        // Descending L = CE + alpha * H: alpha = -5 dominates CE and pushes
        // the distribution toward uniform; alpha = +5 pushes it toward a
        // one-hot peak.
        let run = |alpha: f32| -> f32 {
            let mut logits = Matrix::from_rows(&[&[2.0, -1.0, 0.5]]);
            let labels = [0];
            for _ in 0..2000 {
                let out = entropy_regularized(&logits, &labels, alpha);
                logits.add_scaled(&out.grad, -0.05);
            }
            entropy(&softmax(logits.row(0)))
        };
        let flat = run(-5.0);
        let sharp = run(5.0);
        assert!(
            flat > 0.9,
            "entropy {flat} should approach ln 3 = {}",
            3.0_f32.ln()
        );
        assert!(sharp < 0.2, "entropy {sharp} should collapse toward 0");
        assert!(flat > sharp);
    }

    #[test]
    fn mse_zero_for_identical_inputs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let out = mean_squared_error(&a, &a);
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.sum(), 0.0);
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Matrix::from_rows(&[&[2.0]]);
        let target = Matrix::from_rows(&[&[1.0]]);
        let out = mean_squared_error(&pred, &target);
        assert!((out.loss - 1.0).abs() < 1e-6);
        assert!(
            out.grad[(0, 0)] > 0.0,
            "gradient should push prediction down"
        );
    }

    #[test]
    #[should_panic(expected = "one label per logit row")]
    fn label_count_mismatch_panics() {
        cross_entropy(&Matrix::zeros(2, 3), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        cross_entropy(&Matrix::zeros(1, 3), &[3]);
    }
}
