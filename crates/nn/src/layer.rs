use eugene_tensor::Matrix;
use rand::rngs::StdRng;
use std::any::Any;

/// A differentiable network layer.
///
/// Layers follow the classic define-by-run contract:
///
/// - [`Layer::forward`] runs a training-mode pass over a batch and caches
///   whatever the backward pass needs;
/// - [`Layer::backward`] consumes the gradient with respect to the layer's
///   output and returns the gradient with respect to its input, storing
///   parameter gradients internally;
/// - [`Layer::visit_params`] exposes `(parameter, gradient)` pairs in a
///   stable order so optimizers can keep per-parameter state;
/// - [`Layer::infer`] runs a pure, cache-free inference pass, and
///   [`Layer::infer_stochastic`] additionally keeps stochastic layers
///   (dropout) live for Monte-Carlo uncertainty estimation (the RDeepSense
///   baseline in the paper's Table II).
///
/// The trait is object-safe; [`crate::Sequential`] stores `Box<dyn Layer>`.
/// Layers are `Send + Sync` so trained networks can be shared across the
/// serving runtime's worker threads behind an `Arc`.
pub trait Layer: Send + Sync {
    /// Training-mode forward pass over a `batch x features` matrix, caching
    /// state for [`Layer::backward`].
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Backward pass: receives `dL/d(output)`, returns `dL/d(input)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a matching
    /// [`Layer::forward`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Inference-mode forward pass; no caches, deterministic.
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Inference with stochastic layers active (dropout stays on). The
    /// default implementation is the deterministic [`Layer::infer`].
    fn infer_stochastic(&self, input: &Matrix, _rng: &mut StdRng) -> Matrix {
        self.infer(input)
    }

    /// Visits `(parameter, gradient)` pairs in a stable order.
    ///
    /// Parameter-free layers use the default empty implementation.
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    /// Number of trainable scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// A short human-readable description (e.g. `"linear 32->64"`).
    fn describe(&self) -> String;

    /// Clones the layer behind a box, enabling `Clone` for containers of
    /// `Box<dyn Layer>` (calibration searches fine-tune copies of a
    /// network and keep the best).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Upcast for downcasting to concrete layer types (model reduction
    /// rewrites `Linear` layers in place).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast; see [`Layer::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
