//! From-scratch neural networks with staged (early-exit) heads.
//!
//! The paper's run-time inference architecture (Fig. 1, Fig. 3) divides a
//! deep network into a small number of *stages* and attaches a thin softmax
//! classifier at the end of each stage, so the scheduler can stop a task
//! once confidence is high enough. This crate implements the pieces needed
//! to train and serve such networks on CPU, with no external ML framework:
//!
//! - [`Linear`], [`Activation`], [`Dropout`] layers with exact backprop;
//! - [`Sequential`] containers and the multi-head [`StagedNetwork`];
//! - softmax cross-entropy with the paper's **entropy regularizer**
//!   (`L = CE + alpha * H`, Eq. 4) in [`loss`];
//! - [`Sgd`] and [`Adam`] optimizers;
//! - a [`Trainer`] driving mini-batch epochs, and evaluation helpers; and
//! - an incremental [`InferenceSession`] that executes one stage at a time,
//!   which is exactly the interface the RTDeepIoT scheduler drives.
//!
//! # Examples
//!
//! Train a tiny staged classifier and run one input stage by stage:
//!
//! ```
//! use eugene_nn::{StagedNetwork, StagedNetworkConfig, Trainer, TrainConfig};
//! use eugene_data::{SyntheticImages, SyntheticImagesConfig};
//! use eugene_tensor::seeded_rng;
//!
//! let mut rng = seeded_rng(0);
//! let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut rng);
//! let (train, _) = gen.generate(200, &mut rng);
//!
//! let config = StagedNetworkConfig {
//!     input_dim: train.dim(),
//!     num_classes: train.num_classes(),
//!     stage_widths: vec![vec![32], vec![32], vec![32]],
//!     dropout: 0.0,
//!     input_skip: false,
//! };
//! let mut net = StagedNetwork::new(&config, &mut rng);
//! Trainer::new(TrainConfig { epochs: 3, ..TrainConfig::default() })
//!     .fit(&mut net, &train, &mut rng);
//!
//! let mut session = net.begin_inference(train.sample(0));
//! let out = session.next_stage().expect("stage 1 exists");
//! assert!(out.confidence > 0.0 && out.confidence <= 1.0);
//! ```

mod activation;
pub mod compile;
mod dropout;
pub mod graph;
mod layer;
mod linear;
pub mod loss;
mod metrics;
mod optimizer;
mod sequential;
mod snapshot;
mod staged;
mod trainer;

pub use activation::Activation;
pub use compile::{CompileError, PlanCache, PlanCacheStats, PlanKey, StagePlan};
pub use dropout::Dropout;
pub use graph::{ActKind, LayerRef, Op, OpGraph, OutputRole, SourceKind};
pub use layer::Layer;
pub use linear::Linear;
pub use metrics::{accuracy, evaluate_staged, StageEval};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use sequential::Sequential;
pub use snapshot::{LayerSnapshot, NetworkSnapshot, SnapshotError};
pub use staged::{InferenceSession, StageOutput, StagedNetwork, StagedNetworkConfig};
pub use trainer::{TrainConfig, TrainReport, Trainer};

// The kernel-parallelism knob, re-exported so training and serving code
// can size the worker pool without depending on `eugene_tensor` directly.
pub use eugene_tensor::{parallelism, set_parallelism, Precision};

#[cfg(test)]
mod integration_tests;
