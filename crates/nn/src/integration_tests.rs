//! Cross-module training tests: staged networks trained on the synthetic
//! CIFAR-10 stand-in must show the statistical structure the paper's
//! experiments rely on.

use crate::metrics::evaluate_staged as evaluate;
use crate::{StagedNetwork, StagedNetworkConfig, TrainConfig, Trainer};
use eugene_data::{Dataset, SyntheticImages, SyntheticImagesConfig};
use eugene_tensor::seeded_rng;

fn small_dataset(seed: u64, n: usize) -> (Dataset, Dataset) {
    let mut rng = seeded_rng(seed);
    let config = SyntheticImagesConfig {
        num_classes: 6,
        dim: 16,
        ..Default::default()
    };
    let gen = SyntheticImages::new(config, &mut rng);
    let (train, _) = gen.generate(n, &mut rng);
    let (test, _) = gen.generate(n / 2, &mut rng);
    (train, test)
}

#[test]
fn staged_network_accuracy_increases_with_depth() {
    let (train, test) = small_dataset(100, 900);
    let config = StagedNetworkConfig {
        input_dim: train.dim(),
        num_classes: train.num_classes(),
        stage_widths: vec![vec![24], vec![24, 24], vec![24, 24]],
        dropout: 0.0,
        input_skip: false,
    };
    let mut net = StagedNetwork::new(&config, &mut seeded_rng(101));
    Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 32,
        ..TrainConfig::default()
    })
    .fit(&mut net, &train, &mut seeded_rng(102));

    let evals = evaluate(&net, &test);
    let chance = 1.0 / test.num_classes() as f64;
    assert!(
        evals[0].accuracy > chance + 0.2,
        "stage 1 accuracy {} barely above chance",
        evals[0].accuracy
    );
    assert!(
        evals[2].accuracy >= evals[0].accuracy - 0.02,
        "depth should not hurt: stage1 {} vs stage3 {}",
        evals[0].accuracy,
        evals[2].accuracy
    );
}

#[test]
fn confidence_spreads_across_samples() {
    // The scheduler requires per-sample confidence variation: easy samples
    // confident at stage 1, hard samples uncertain.
    let (train, test) = small_dataset(200, 900);
    let config = StagedNetworkConfig {
        input_dim: train.dim(),
        num_classes: train.num_classes(),
        stage_widths: vec![vec![24], vec![24]],
        dropout: 0.0,
        input_skip: false,
    };
    let mut net = StagedNetwork::new(&config, &mut seeded_rng(201));
    Trainer::new(TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    })
    .fit(&mut net, &train, &mut seeded_rng(202));

    let evals = evaluate(&net, &test);
    let spread = eugene_tensor::std_dev(&evals[0].confidences);
    assert!(
        spread > 0.05,
        "stage-1 confidence spread {spread} too small"
    );
}

#[test]
fn correct_predictions_are_more_confident_on_average() {
    let (train, test) = small_dataset(300, 900);
    let config = StagedNetworkConfig {
        input_dim: train.dim(),
        num_classes: train.num_classes(),
        stage_widths: vec![vec![24], vec![24]],
        dropout: 0.0,
        input_skip: false,
    };
    let mut net = StagedNetwork::new(&config, &mut seeded_rng(301));
    Trainer::new(TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    })
    .fit(&mut net, &train, &mut seeded_rng(302));

    let eval = evaluate(&net, &test).pop().expect("one stage at least");
    let (mut conf_correct, mut n_correct) = (0.0, 0);
    let (mut conf_wrong, mut n_wrong) = (0.0, 0);
    for (c, ok) in eval.confidences.iter().zip(&eval.correct) {
        if *ok {
            conf_correct += c;
            n_correct += 1;
        } else {
            conf_wrong += c;
            n_wrong += 1;
        }
    }
    assert!(
        n_correct > 0 && n_wrong > 0,
        "need both outcomes to compare"
    );
    assert!(
        conf_correct / n_correct as f32 > conf_wrong / n_wrong as f32,
        "confidence should correlate with correctness"
    );
}
