use crate::Layer;
use eugene_tensor::Matrix;
use rand::rngs::StdRng;

/// An ordered container of layers applied back to back.
///
/// `Sequential` is itself a [`Layer`], so stages of a
/// [`crate::StagedNetwork`] are `Sequential` blocks and the whole trunk
/// composes naturally.
///
/// # Examples
///
/// ```
/// use eugene_nn::{Activation, Layer, Linear, Sequential};
/// use eugene_tensor::{seeded_rng, Matrix};
///
/// let mut rng = seeded_rng(0);
/// let mut block = Sequential::new();
/// block.push(Linear::new(4, 8, &mut rng));
/// block.push(Activation::relu());
/// let out = block.infer(&Matrix::zeros(2, 4));
/// assert_eq!(out.shape(), (2, 8));
/// ```
#[derive(Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrows the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrows the layers (used by pruning).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[{}]", self.describe())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    fn infer_stochastic(&self, input: &Matrix, rng: &mut StdRng) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer_stochastic(&x, rng);
        }
        x
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.describe())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Linear};
    use eugene_tensor::seeded_rng;

    fn two_layer() -> Sequential {
        let mut rng = seeded_rng(1);
        let mut block = Sequential::new();
        block.push(Linear::new(3, 5, &mut rng));
        block.push(Activation::relu());
        block.push(Linear::new(5, 2, &mut rng));
        block
    }

    #[test]
    fn forward_and_infer_agree_without_stochastic_layers() {
        let mut block = two_layer();
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let trained = block.forward(&x);
        let inferred = block.infer(&x);
        assert_eq!(trained, inferred);
    }

    #[test]
    fn backward_matches_finite_differences_through_composition() {
        let mut block = two_layer();
        let x = Matrix::from_rows(&[&[0.4, 0.1, -0.3]]);
        block.forward(&x);
        let grad_in = block.backward(&Matrix::filled(1, 2, 1.0));
        let eps = 1e-3;
        for c in 0..3 {
            let mut plus = x.clone();
            plus[(0, c)] += eps;
            let mut minus = x.clone();
            minus[(0, c)] -= eps;
            let numeric = (block.infer(&plus).sum() - block.infer(&minus).sum()) / (2.0 * eps);
            assert!(
                (grad_in[(0, c)] - numeric).abs() < 1e-2,
                "grad (0,{c}): analytic {} vs numeric {numeric}",
                grad_in[(0, c)]
            );
        }
    }

    #[test]
    fn param_count_sums_layers() {
        let block = two_layer();
        assert_eq!(block.param_count(), (3 * 5 + 5) + (5 * 2 + 2));
    }

    #[test]
    fn visit_params_order_is_stable() {
        let mut block = two_layer();
        let mut shapes_a = Vec::new();
        block.visit_params(&mut |p, _| shapes_a.push(p.shape()));
        let mut shapes_b = Vec::new();
        block.visit_params(&mut |p, _| shapes_b.push(p.shape()));
        assert_eq!(shapes_a, shapes_b);
        assert_eq!(shapes_a, vec![(3, 5), (1, 5), (5, 2), (1, 2)]);
    }

    #[test]
    fn describe_joins_layer_descriptions() {
        let block = two_layer();
        assert_eq!(block.describe(), "linear 3->5 | relu | linear 5->2");
    }

    #[test]
    fn empty_sequential_is_identity() {
        let block = Sequential::new();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(block.infer(&x), x);
        assert!(block.is_empty());
    }
}
