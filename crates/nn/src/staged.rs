use crate::compile::{CompileError, PlanCache, PlanKey, StagePlan};
use crate::{Activation, Dropout, Layer, Linear, Sequential};
use eugene_tensor::{argmax, softmax, Matrix, Precision};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Architecture description for a [`StagedNetwork`].
///
/// `stage_widths[s]` lists the hidden-layer widths inside stage `s`; each
/// stage ends where the next begins, and a thin softmax classifier head is
/// attached to every stage boundary (paper Fig. 1 / Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagedNetworkConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Number of output classes shared by all heads.
    pub num_classes: usize,
    /// Hidden widths per stage, outermost `Vec` indexed by stage.
    pub stage_widths: Vec<Vec<usize>>,
    /// Dropout probability inserted after every hidden activation
    /// (`0.0` disables dropout).
    pub dropout: f32,
    /// Shortcut connections (paper Fig. 3: "ResNets add extra shortcut
    /// connections"): each stage after the first sees `[previous stage
    /// output | raw input]`, so an early narrow stage does not bottleneck
    /// the information available to deeper stages.
    pub input_skip: bool,
}

impl StagedNetworkConfig {
    /// The three-stage configuration used by the reproduction's
    /// CIFAR-10-stand-in experiments, mirroring the paper's three-stage
    /// ResNet: a deliberately narrow first stage (cheap, less accurate),
    /// wider later stages, and shortcut connections so depth genuinely
    /// adds accuracy.
    pub fn three_stage(input_dim: usize, num_classes: usize) -> Self {
        Self {
            input_dim,
            num_classes,
            stage_widths: vec![vec![8], vec![24], vec![64, 64]],
            dropout: 0.1,
            input_skip: true,
        }
    }
}

/// The classification emitted by one stage head: the paper's
/// `(predicted value, confidence)` tuple (§III-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageOutput {
    /// Zero-based stage index that produced this output.
    pub stage: usize,
    /// Full softmax distribution over classes.
    pub probs: Vec<f32>,
    /// `argmax` class.
    pub predicted: usize,
    /// The largest probability — the classification confidence.
    pub confidence: f32,
}

impl StageOutput {
    fn from_logits(stage: usize, logits: &[f32]) -> Self {
        let probs = softmax(logits);
        let predicted = argmax(&probs);
        let confidence = probs[predicted];
        Self {
            stage,
            probs,
            predicted,
            confidence,
        }
    }
}

/// A deep network split into stages with a softmax classifier per stage.
///
/// This is the reproduction's analog of the paper's three-stage ResNet
/// (Fig. 3): `stages[0..n]` form the trunk (optionally with input
/// shortcuts), and `heads[s]` maps stage `s`'s activations to class
/// logits. Training runs all heads jointly; serving runs stages one at a
/// time through [`StagedNetwork::begin_inference`] so the scheduler can
/// stop early.
#[derive(Clone)]
pub struct StagedNetwork {
    stages: Vec<Sequential>,
    heads: Vec<Linear>,
    input_dim: usize,
    num_classes: usize,
    stage_output_dims: Vec<usize>,
    input_skip: bool,
    /// Compiled stage plans, keyed by `(stage, rows, precision)`.
    /// Cloning a network yields a fresh, empty cache (see
    /// [`PlanCache`]); every parameter-mutation path below calls
    /// `plans.invalidate()`.
    plans: PlanCache,
}

impl StagedNetwork {
    /// Builds a network from `config`, initializing weights from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the config has no stages, a stage has no layers, or any
    /// dimension is zero.
    pub fn new(config: &StagedNetworkConfig, rng: &mut impl Rng) -> Self {
        assert!(!config.stage_widths.is_empty(), "need at least one stage");
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(config.num_classes >= 2, "need at least two classes");
        let mut stages = Vec::with_capacity(config.stage_widths.len());
        let mut heads = Vec::with_capacity(config.stage_widths.len());
        let mut stage_output_dims = Vec::with_capacity(config.stage_widths.len());
        let mut prev_out = config.input_dim;
        for (s, widths) in config.stage_widths.iter().enumerate() {
            assert!(!widths.is_empty(), "stage {s} must have at least one layer");
            let mut in_dim = if s > 0 && config.input_skip {
                prev_out + config.input_dim
            } else {
                prev_out
            };
            let mut block = Sequential::new();
            for &w in widths {
                assert!(w > 0, "stage {s} has a zero-width layer");
                block.push(Linear::new(in_dim, w, rng));
                block.push(Activation::relu());
                if config.dropout > 0.0 {
                    block.push(Dropout::new(config.dropout, rng.gen()));
                }
                in_dim = w;
            }
            heads.push(Linear::new(in_dim, config.num_classes, rng));
            stage_output_dims.push(in_dim);
            stages.push(block);
            prev_out = in_dim;
        }
        Self {
            stages,
            heads,
            input_dim: config.input_dim,
            num_classes: config.num_classes,
            stage_output_dims,
            input_skip: config.input_skip,
            plans: PlanCache::new(),
        }
    }

    /// Assembles a network from pre-built stage blocks and heads (used by
    /// model reduction).
    ///
    /// # Panics
    ///
    /// Panics if `stages` and `heads` lengths differ or are empty.
    pub fn from_parts(
        stages: Vec<Sequential>,
        heads: Vec<Linear>,
        input_dim: usize,
        num_classes: usize,
        input_skip: bool,
    ) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        assert_eq!(stages.len(), heads.len(), "one head per stage required");
        let stage_output_dims = heads.iter().map(Linear::in_dim).collect();
        Self {
            stages,
            heads,
            input_dim,
            num_classes,
            stage_output_dims,
            input_skip,
            plans: PlanCache::new(),
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether stages after the first see the raw input via a shortcut.
    pub fn input_skip(&self) -> bool {
        self.input_skip
    }

    /// The activation width at the output of stage `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn stage_output_dim(&self, s: usize) -> usize {
        self.stage_output_dims[s]
    }

    /// Total trainable parameters across trunk and heads.
    pub fn param_count(&self) -> usize {
        self.stages
            .iter()
            .map(Sequential::param_count)
            .sum::<usize>()
            + self.heads.iter().map(Layer::param_count).sum::<usize>()
    }

    /// Borrows the trunk blocks.
    pub fn stages(&self) -> &[Sequential] {
        &self.stages
    }

    /// Mutably borrows the trunk blocks (used by pruning). Invalidates
    /// all compiled stage plans — the caller may mutate weights.
    pub fn stages_mut(&mut self) -> &mut [Sequential] {
        self.plans.invalidate();
        &mut self.stages
    }

    /// Borrows the per-stage heads.
    pub fn heads(&self) -> &[Linear] {
        &self.heads
    }

    /// Mutably borrows the per-stage heads (used by pruning and
    /// calibration). Invalidates all compiled stage plans.
    pub fn heads_mut(&mut self) -> &mut [Linear] {
        self.plans.invalidate();
        &mut self.heads
    }

    /// The serving precision of trunk stage `s`: [`Precision::Int8`]
    /// when every `Linear` in the block carries a quantized pack,
    /// [`Precision::F32`] otherwise. Heads always serve f32 — their
    /// logits feed entropy-based exit decisions, where quantization
    /// noise would directly perturb confidence thresholds.
    pub fn stage_precision(&self, s: usize) -> Precision {
        let mut linears = 0usize;
        let mut quantized = 0usize;
        if let Some(block) = self.stages.get(s) {
            for layer in block.layers() {
                if let Some(lin) = layer.as_any().downcast_ref::<Linear>() {
                    linears += 1;
                    if lin.precision() == Precision::Int8 {
                        quantized += 1;
                    }
                }
            }
        }
        if linears > 0 && linears == quantized {
            Precision::Int8
        } else {
            Precision::F32
        }
    }

    /// Per-stage serving precisions, indexable by stage.
    pub fn stage_precisions(&self) -> Vec<Precision> {
        (0..self.stages.len())
            .map(|s| self.stage_precision(s))
            .collect()
    }

    /// Switches the listed trunk stages to quantized (i8) serving by
    /// packing every `Linear` in those blocks; stages not listed are
    /// reset to f32. Out-of-range indices are ignored. Heads are left
    /// untouched (see [`StagedNetwork::stage_precision`]).
    pub fn quantize_stages(&mut self, stages: &[usize]) {
        // Repacking changes which kernels (and which packs) a stage
        // serves with, so every compiled plan is stale.
        self.plans.invalidate();
        for (s, block) in self.stages.iter_mut().enumerate() {
            let precision = if stages.contains(&s) {
                Precision::Int8
            } else {
                Precision::F32
            };
            for layer in block.layers_mut() {
                if let Some(lin) = layer.as_any_mut().downcast_mut::<Linear>() {
                    lin.set_precision(precision);
                }
            }
        }
    }

    /// The input a stage consumes given the previous stage's output.
    fn stage_input(&self, s: usize, hidden: &Matrix, input: &Matrix) -> Matrix {
        if s > 0 && self.input_skip {
            hidden.hconcat(input)
        } else {
            hidden.clone()
        }
    }

    /// Training forward pass over a batch: returns per-stage logits,
    /// caching layer state for [`StagedNetwork::backward`].
    pub fn forward_train(&mut self, input: &Matrix) -> Vec<Matrix> {
        let mut logits = Vec::with_capacity(self.stages.len());
        let mut hidden = input.clone();
        for s in 0..self.stages.len() {
            let stage_in = if s > 0 && self.input_skip {
                hidden.hconcat(input)
            } else {
                hidden
            };
            hidden = self.stages[s].forward(&stage_in);
            logits.push(self.heads[s].forward(&hidden));
        }
        logits
    }

    /// Backward pass given the per-stage logit gradients (one matrix per
    /// head, as produced by the losses in [`crate::loss`]).
    ///
    /// Returns the gradient with respect to the network input (including
    /// shortcut contributions).
    ///
    /// # Panics
    ///
    /// Panics if `grad_logits.len() != self.num_stages()` or called before
    /// [`StagedNetwork::forward_train`].
    pub fn backward(&mut self, grad_logits: &[Matrix]) -> Matrix {
        assert_eq!(
            grad_logits.len(),
            self.stages.len(),
            "need one logit gradient per stage"
        );
        let mut carry: Option<Matrix> = None;
        let mut input_grad: Option<Matrix> = None;
        for s in (0..self.stages.len()).rev() {
            let mut g = self.heads[s].backward(&grad_logits[s]);
            if let Some(c) = carry {
                g += &c;
            }
            let full = self.stages[s].backward(&g);
            if s > 0 && self.input_skip {
                // Split [prev stage | raw input] gradient.
                let prev_width = self.stage_output_dims[s - 1];
                let prev_cols: Vec<usize> = (0..prev_width).collect();
                let input_cols: Vec<usize> = (prev_width..prev_width + self.input_dim).collect();
                let to_input = full.select_cols(&input_cols);
                match &mut input_grad {
                    Some(acc) => *acc += &to_input,
                    None => input_grad = Some(to_input),
                }
                carry = Some(full.select_cols(&prev_cols));
            } else {
                carry = Some(full);
            }
        }
        let mut total = carry.expect("at least one stage");
        if let Some(acc) = input_grad {
            total += &acc;
        }
        total
    }

    /// Visits all `(parameter, gradient)` pairs in a stable order:
    /// trunk stages first, then heads.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        // The optimizer mutates weights through this hook.
        self.plans.invalidate();
        for stage in &mut self.stages {
            stage.visit_params(visitor);
        }
        for head in &mut self.heads {
            head.visit_params(visitor);
        }
    }

    /// Pure inference of the trunk only: the activation matrix at each
    /// stage boundary for a whole batch. Confidence calibration freezes
    /// the trunk and fine-tunes only the thin classifier heads, so it
    /// caches these activations once and reuses them every round.
    pub fn stage_activations(&self, input: &Matrix) -> Vec<Matrix> {
        let mut out = Vec::with_capacity(self.stages.len());
        let mut hidden = input.clone();
        for s in 0..self.stages.len() {
            let stage_in = self.stage_input(s, &hidden, input);
            hidden = self.stages[s].infer(&stage_in);
            out.push(hidden.clone());
        }
        out
    }

    /// Pure inference: per-stage logits for a whole batch.
    pub fn predict_all(&self, input: &Matrix) -> Vec<Matrix> {
        self.stage_activations(input)
            .iter()
            .zip(&self.heads)
            .map(|(h, head)| head.infer(h))
            .collect()
    }

    /// Stochastic inference with dropout live (Monte-Carlo pass); used by
    /// the RDeepSense calibration baseline.
    pub fn predict_stochastic(&self, input: &Matrix, rng: &mut StdRng) -> Vec<Matrix> {
        let mut logits = Vec::with_capacity(self.stages.len());
        let mut hidden = input.clone();
        for s in 0..self.stages.len() {
            let stage_in = self.stage_input(s, &hidden, input);
            hidden = self.stages[s].infer_stochastic(&stage_in, rng);
            logits.push(self.heads[s].infer_stochastic(&hidden, rng));
        }
        logits
    }

    /// Runs every stage on a single sample, returning one [`StageOutput`]
    /// per stage.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.input_dim()`.
    pub fn classify(&self, sample: &[f32]) -> Vec<StageOutput> {
        let mut session = self.begin_inference(sample);
        let mut outputs = Vec::with_capacity(self.num_stages());
        while let Some(out) = session.next_stage() {
            outputs.push(out);
        }
        outputs
    }

    /// Starts an incremental, stage-at-a-time inference session over one
    /// sample — the execution interface the RTDeepIoT scheduler drives.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.input_dim()`.
    pub fn begin_inference(&self, sample: &[f32]) -> InferenceSession<'_> {
        assert_eq!(
            sample.len(),
            self.input_dim,
            "sample dimension {} must equal input_dim {}",
            sample.len(),
            self.input_dim
        );
        InferenceSession {
            network: self,
            input: Matrix::row_vector(sample),
            hidden: Matrix::row_vector(sample),
            next_stage: 0,
            last_output: None,
        }
    }

    /// The compiled, cached execution plan for `stage` at a batch
    /// shape of `rows`, compiling it on first use. Plans fuse
    /// elementwise tails into the GEMM epilogue and carry pre-packed
    /// weight panels plus pooled intermediate buffers, and execute
    /// **bitwise-identically** to the layer walk — see
    /// [`crate::compile`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the stage does not exist or holds
    /// a layer the op IR cannot express; callers fall back to the
    /// layer-walk path.
    pub fn stage_plan(&self, stage: usize, rows: usize) -> Result<Arc<StagePlan>, CompileError> {
        let key = PlanKey {
            stage,
            rows,
            precision: self.stage_precision(stage),
        };
        self.plans.get_or_compile(self, key)
    }

    /// The network's compiled-plan cache (counters, generation tag).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// A short human-readable architecture summary.
    pub fn describe(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .enumerate()
            .map(|(s, block)| {
                format!(
                    "stage{}: {} -> head {}",
                    s,
                    block.describe(),
                    self.heads[s].describe()
                )
            })
            .collect();
        stages.join("\n")
    }
}

impl std::fmt::Debug for StagedNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StagedNetwork({} stages, {} params)",
            self.num_stages(),
            self.param_count()
        )
    }
}

/// Incremental single-sample inference over a [`StagedNetwork`].
///
/// Each call to [`InferenceSession::next_stage`] executes exactly one stage
/// plus its classifier head — the unit of work the paper's scheduler
/// allocates — and reports the resulting `(prediction, confidence)`.
#[derive(Debug)]
pub struct InferenceSession<'a> {
    network: &'a StagedNetwork,
    input: Matrix,
    hidden: Matrix,
    next_stage: usize,
    last_output: Option<StageOutput>,
}

impl InferenceSession<'_> {
    /// Executes the next stage, or returns `None` when all stages have run.
    pub fn next_stage(&mut self) -> Option<StageOutput> {
        if self.next_stage >= self.network.num_stages() {
            return None;
        }
        let s = self.next_stage;
        let stage_in = self.network.stage_input(s, &self.hidden, &self.input);
        self.hidden = self.network.stages[s].infer(&stage_in);
        let logits = self.network.heads[s].infer(&self.hidden);
        let out = StageOutput::from_logits(s, logits.row(0));
        self.next_stage += 1;
        self.last_output = Some(out.clone());
        Some(out)
    }

    /// Index of the stage that [`InferenceSession::next_stage`] would run
    /// next.
    pub fn stages_completed(&self) -> usize {
        self.next_stage
    }

    /// Number of stages not yet executed.
    pub fn stages_remaining(&self) -> usize {
        self.network.num_stages() - self.next_stage
    }

    /// Whether every stage has been executed.
    pub fn is_finished(&self) -> bool {
        self.stages_remaining() == 0
    }

    /// The most recent stage output, if any stage has run.
    pub fn last_output(&self) -> Option<&StageOutput> {
        self.last_output.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::seeded_rng;

    fn tiny_config() -> StagedNetworkConfig {
        StagedNetworkConfig {
            input_dim: 4,
            num_classes: 3,
            stage_widths: vec![vec![6], vec![6], vec![5]],
            dropout: 0.0,
            input_skip: false,
        }
    }

    fn skip_config() -> StagedNetworkConfig {
        StagedNetworkConfig {
            input_skip: true,
            ..tiny_config()
        }
    }

    #[test]
    fn construction_matches_config() {
        let net = StagedNetwork::new(&tiny_config(), &mut seeded_rng(1));
        assert_eq!(net.num_stages(), 3);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.num_classes(), 3);
        assert_eq!(net.stage_output_dim(0), 6);
        assert_eq!(net.stage_output_dim(2), 5);
        assert!(!net.input_skip());
    }

    #[test]
    fn quantize_stages_tags_precisions_and_tracks_f32() {
        let mut net = StagedNetwork::new(&tiny_config(), &mut seeded_rng(11));
        let input = Matrix::from_rows(&[&[0.2, -0.5, 0.8, 0.1], &[0.9, 0.3, -0.2, -0.7]]);
        let f32_logits = net.predict_all(&input);
        assert_eq!(net.stage_precisions(), vec![Precision::F32; 3]);

        net.quantize_stages(&[0, 1]);
        assert_eq!(
            net.stage_precisions(),
            vec![Precision::Int8, Precision::Int8, Precision::F32]
        );
        let q_logits = net.predict_all(&input);
        for (ql, fl) in q_logits.iter().zip(&f32_logits) {
            for (q, f) in ql.as_slice().iter().zip(fl.as_slice()) {
                assert!((q - f).abs() < 0.1, "quantized logits drifted: {q} vs {f}");
            }
        }

        net.quantize_stages(&[]);
        assert_eq!(net.stage_precisions(), vec![Precision::F32; 3]);
        assert_eq!(net.predict_all(&input), f32_logits, "f32 path restored");
    }

    #[test]
    fn param_count_is_exact() {
        let net = StagedNetwork::new(&tiny_config(), &mut seeded_rng(2));
        // Trunk: 4*6+6, 6*6+6, 6*5+5. Heads: 6*3+3, 6*3+3, 5*3+3.
        let expected = (4 * 6 + 6) + (6 * 6 + 6) + (6 * 5 + 5) + 2 * (6 * 3 + 3) + (5 * 3 + 3);
        assert_eq!(net.param_count(), expected);
    }

    #[test]
    fn skip_widens_later_stage_inputs() {
        let net = StagedNetwork::new(&skip_config(), &mut seeded_rng(3));
        // Stage 2's first linear must accept 6 (prev) + 4 (input) dims.
        // Trunk params: 4*6+6, (6+4)*6+6, (6+4)*5+5.
        let expected_trunk = (4 * 6 + 6) + (10 * 6 + 6) + (10 * 5 + 5);
        let heads = 2 * (6 * 3 + 3) + (5 * 3 + 3);
        assert_eq!(net.param_count(), expected_trunk + heads);
    }

    #[test]
    fn session_runs_each_stage_once() {
        for config in [tiny_config(), skip_config()] {
            let net = StagedNetwork::new(&config, &mut seeded_rng(3));
            let mut session = net.begin_inference(&[0.1, 0.2, 0.3, 0.4]);
            assert_eq!(session.stages_remaining(), 3);
            let o1 = session.next_stage().unwrap();
            assert_eq!(o1.stage, 0);
            let o2 = session.next_stage().unwrap();
            assert_eq!(o2.stage, 1);
            let o3 = session.next_stage().unwrap();
            assert_eq!(o3.stage, 2);
            assert!(session.is_finished());
            assert!(session.next_stage().is_none());
            assert_eq!(session.last_output().unwrap().stage, 2);
        }
    }

    #[test]
    fn session_agrees_with_batch_prediction() {
        for config in [tiny_config(), skip_config()] {
            let net = StagedNetwork::new(&config, &mut seeded_rng(4));
            let sample = [0.5, -0.5, 0.25, 1.0];
            let outputs = net.classify(&sample);
            let batch_logits = net.predict_all(&Matrix::row_vector(&sample));
            for (s, out) in outputs.iter().enumerate() {
                let expected = softmax(batch_logits[s].row(0));
                for (a, b) in out.probs.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn stage_outputs_are_distributions() {
        let net = StagedNetwork::new(&tiny_config(), &mut seeded_rng(5));
        for out in net.classify(&[1.0, 2.0, 3.0, 4.0]) {
            assert!((out.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(out.confidence >= 1.0 / 3.0 - 1e-6, "max prob at least 1/K");
            assert_eq!(out.predicted, argmax(&out.probs));
        }
    }

    #[test]
    fn backward_produces_input_gradient_matching_finite_differences() {
        for config in [tiny_config(), skip_config()] {
            let mut net = StagedNetwork::new(&config, &mut seeded_rng(6));
            let x = Matrix::from_rows(&[&[0.2, -0.4, 0.6, 0.1]]);
            // Scalar objective: sum of all stage logits.
            let logits = net.forward_train(&x);
            let grads: Vec<Matrix> = logits
                .iter()
                .map(|l| Matrix::filled(l.rows(), l.cols(), 1.0))
                .collect();
            let grad_in = net.backward(&grads);
            let objective = |net: &StagedNetwork, x: &Matrix| -> f32 {
                net.predict_all(x).iter().map(Matrix::sum).sum()
            };
            let eps = 1e-3;
            for c in 0..4 {
                let mut plus = x.clone();
                plus[(0, c)] += eps;
                let mut minus = x.clone();
                minus[(0, c)] -= eps;
                let numeric = (objective(&net, &plus) - objective(&net, &minus)) / (2.0 * eps);
                assert!(
                    (grad_in[(0, c)] - numeric).abs() < 2e-2,
                    "skip={}: input grad (0,{c}): analytic {} vs numeric {numeric}",
                    config.input_skip,
                    grad_in[(0, c)]
                );
            }
        }
    }

    #[test]
    fn visit_params_is_stable_and_complete() {
        let mut net = StagedNetwork::new(&skip_config(), &mut seeded_rng(7));
        let mut total = 0;
        net.visit_params(&mut |p, _| total += p.len());
        assert_eq!(total, net.param_count());
    }

    #[test]
    #[should_panic(expected = "sample dimension")]
    fn wrong_input_dim_panics() {
        let net = StagedNetwork::new(&tiny_config(), &mut seeded_rng(8));
        net.begin_inference(&[1.0]);
    }

    #[test]
    fn stochastic_prediction_differs_with_dropout() {
        let config = StagedNetworkConfig {
            dropout: 0.4,
            ..tiny_config()
        };
        let net = StagedNetwork::new(&config, &mut seeded_rng(9));
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        let mut rng = seeded_rng(10);
        let a = net.predict_stochastic(&x, &mut rng);
        let b = net.predict_stochastic(&x, &mut rng);
        assert_ne!(a[2], b[2], "MC passes should differ at the deepest head");
        // Deterministic inference is stable.
        assert_eq!(net.predict_all(&x), net.predict_all(&x));
    }

    #[test]
    fn stage_activations_match_predict_all_via_heads() {
        let net = StagedNetwork::new(&skip_config(), &mut seeded_rng(11));
        let x = Matrix::from_rows(&[&[0.3, 0.1, -0.7, 0.9], &[1.0, 0.0, 0.0, -1.0]]);
        let acts = net.stage_activations(&x);
        let logits = net.predict_all(&x);
        for (s, act) in acts.iter().enumerate() {
            let via_head = net.heads()[s].infer(act);
            assert_eq!(via_head, logits[s]);
        }
    }
}
