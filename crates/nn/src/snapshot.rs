//! Serializable network snapshots.
//!
//! The paper's caching story ships models across the network: the server
//! "may retrain a neural network ..., compress the result, and download
//! the compressed model to the device" (§II-B), and §IV-A moves partial
//! models between clients and servers. [`NetworkSnapshot`] is the wire
//! format: a plain-data description of a [`StagedNetwork`] that
//! round-trips through any serde format.

use crate::{Activation, Dropout, Layer, Linear, Sequential, StagedNetwork};
use eugene_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// One layer, as plain data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSnapshot {
    /// Fully connected layer (weights `in x out`, bias `1 x out`).
    Linear {
        /// Weight matrix.
        weights: Matrix,
        /// Bias row.
        bias: Matrix,
    },
    /// ReLU activation.
    Relu,
    /// Tanh activation.
    Tanh,
    /// Inverted dropout with its probability and RNG seed.
    Dropout {
        /// Drop probability.
        p: f32,
        /// Mask RNG seed.
        seed: u64,
    },
}

/// A whole staged network, as plain data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSnapshot {
    /// Trunk stages, each a list of layers.
    pub stages: Vec<Vec<LayerSnapshot>>,
    /// One classifier head per stage.
    pub heads: Vec<LayerSnapshot>,
    /// Input dimensionality.
    pub input_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Whether stages after the first see the raw input (shortcuts).
    pub input_skip: bool,
}

/// Error restoring a network from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot has no stages or mismatched heads.
    MalformedStructure {
        /// What was wrong.
        reason: String,
    },
    /// A head was not a linear layer.
    NonLinearHead {
        /// Stage index of the offending head.
        stage: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::MalformedStructure { reason } => {
                write!(f, "malformed network snapshot: {reason}")
            }
            SnapshotError::NonLinearHead { stage } => {
                write!(f, "head of stage {stage} must be a linear layer")
            }
        }
    }
}

impl Error for SnapshotError {}

impl StagedNetwork {
    /// Captures the network as plain serializable data.
    ///
    /// Unknown custom layer types are not representable; networks built by
    /// this crate's constructors always snapshot cleanly.
    ///
    /// # Panics
    ///
    /// Panics if the network contains a layer type this module does not
    /// know (impossible for networks built via [`crate::StagedNetworkConfig`]).
    pub fn to_snapshot(&self) -> NetworkSnapshot {
        let stages = self
            .stages()
            .iter()
            .map(|block| {
                block
                    .layers()
                    .iter()
                    .map(|l| snapshot_layer(l.as_ref()))
                    .collect()
            })
            .collect();
        let heads = self
            .heads()
            .iter()
            .map(|h| LayerSnapshot::Linear {
                weights: h.weights().clone(),
                bias: h.bias().clone(),
            })
            .collect();
        NetworkSnapshot {
            stages,
            heads,
            input_dim: self.input_dim(),
            num_classes: self.num_classes(),
            input_skip: self.input_skip(),
        }
    }

    /// Restores a network from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if the snapshot is structurally invalid.
    pub fn from_snapshot(snapshot: &NetworkSnapshot) -> Result<Self, SnapshotError> {
        if snapshot.stages.is_empty() {
            return Err(SnapshotError::MalformedStructure {
                reason: "no stages".to_owned(),
            });
        }
        if snapshot.stages.len() != snapshot.heads.len() {
            return Err(SnapshotError::MalformedStructure {
                reason: format!(
                    "{} stages but {} heads",
                    snapshot.stages.len(),
                    snapshot.heads.len()
                ),
            });
        }
        let mut stages = Vec::with_capacity(snapshot.stages.len());
        for layers in &snapshot.stages {
            let mut block = Sequential::new();
            for layer in layers {
                block.push_boxed(restore_layer(layer));
            }
            stages.push(block);
        }
        let mut heads = Vec::with_capacity(snapshot.heads.len());
        for (s, head) in snapshot.heads.iter().enumerate() {
            match head {
                LayerSnapshot::Linear { weights, bias } => {
                    heads.push(Linear::from_parts(weights.clone(), bias.clone()));
                }
                _ => return Err(SnapshotError::NonLinearHead { stage: s }),
            }
        }
        Ok(StagedNetwork::from_parts(
            stages,
            heads,
            snapshot.input_dim,
            snapshot.num_classes,
            snapshot.input_skip,
        ))
    }
}

fn snapshot_layer(layer: &dyn Layer) -> LayerSnapshot {
    if let Some(linear) = layer.as_any().downcast_ref::<Linear>() {
        return LayerSnapshot::Linear {
            weights: linear.weights().clone(),
            bias: linear.bias().clone(),
        };
    }
    if let Some(dropout) = layer.as_any().downcast_ref::<Dropout>() {
        return LayerSnapshot::Dropout {
            p: dropout.probability(),
            // The seed is not recoverable from StdRng; reseed from the
            // probability's bits for determinism. Dropout is inert at
            // inference, so this only affects further training runs.
            seed: dropout.probability().to_bits() as u64,
        };
    }
    if layer.as_any().downcast_ref::<Activation>().is_some() {
        return match layer.describe().as_str() {
            "tanh" => LayerSnapshot::Tanh,
            _ => LayerSnapshot::Relu,
        };
    }
    panic!("unsupported layer type in snapshot: {}", layer.describe());
}

fn restore_layer(snapshot: &LayerSnapshot) -> Box<dyn Layer> {
    match snapshot {
        LayerSnapshot::Linear { weights, bias } => {
            Box::new(Linear::from_parts(weights.clone(), bias.clone()))
        }
        LayerSnapshot::Relu => Box::new(Activation::relu()),
        LayerSnapshot::Tanh => Box::new(Activation::tanh()),
        LayerSnapshot::Dropout { p, seed } => Box::new(Dropout::new(*p, *seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StagedNetworkConfig;
    use eugene_tensor::seeded_rng;

    fn network() -> StagedNetwork {
        let config = StagedNetworkConfig {
            input_dim: 6,
            num_classes: 4,
            stage_widths: vec![vec![8], vec![8, 8]],
            dropout: 0.2,
            input_skip: true,
        };
        StagedNetwork::new(&config, &mut seeded_rng(1))
    }

    #[test]
    fn snapshot_round_trip_preserves_inference() {
        let net = network();
        let snapshot = net.to_snapshot();
        let restored = StagedNetwork::from_snapshot(&snapshot).unwrap();
        let sample: Vec<f32> = (0..6).map(|i| (i as f32).sin()).collect();
        let a = net.classify(&sample);
        let b = restored.classify(&sample);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.predicted, y.predicted);
            assert!((x.confidence - y.confidence).abs() < 1e-6);
        }
        assert_eq!(restored.param_count(), net.param_count());
        assert_eq!(restored.input_skip(), net.input_skip());
    }

    #[test]
    fn snapshot_survives_json() {
        let net = network();
        let json = serde_json::to_string(&net.to_snapshot()).unwrap();
        let parsed: NetworkSnapshot = serde_json::from_str(&json).unwrap();
        let restored = StagedNetwork::from_snapshot(&parsed).unwrap();
        let sample = [0.5f32; 6];
        let a = net.classify(&sample);
        let b = restored.classify(&sample);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.confidence - y.confidence).abs() < 1e-6);
        }
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        let empty = NetworkSnapshot {
            stages: vec![],
            heads: vec![],
            input_dim: 4,
            num_classes: 2,
            input_skip: false,
        };
        assert!(matches!(
            StagedNetwork::from_snapshot(&empty),
            Err(SnapshotError::MalformedStructure { .. })
        ));

        let bad_head = NetworkSnapshot {
            stages: vec![vec![LayerSnapshot::Relu]],
            heads: vec![LayerSnapshot::Relu],
            input_dim: 4,
            num_classes: 2,
            input_skip: false,
        };
        assert!(matches!(
            StagedNetwork::from_snapshot(&bad_head),
            Err(SnapshotError::NonLinearHead { stage: 0 })
        ));
    }

    #[test]
    fn snapshot_size_tracks_parameters() {
        // The cached-model story ships snapshots to devices; a pruned
        // model's snapshot must be proportionally smaller.
        let net = network();
        let big = serde_json::to_vec(&net.to_snapshot()).unwrap().len();
        let small_config = StagedNetworkConfig {
            input_dim: 6,
            num_classes: 4,
            stage_widths: vec![vec![3]],
            dropout: 0.0,
            input_skip: false,
        };
        let small_net = StagedNetwork::new(&small_config, &mut seeded_rng(2));
        let small = serde_json::to_vec(&small_net.to_snapshot()).unwrap().len();
        assert!(small * 2 < big, "small {small} vs big {big}");
    }
}
