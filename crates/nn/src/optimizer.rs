use eugene_tensor::Matrix;

/// A first-order optimizer over the `(parameter, gradient)` pairs exposed
/// by [`crate::Layer::visit_params`].
///
/// Optimizers keep per-parameter state (momentum, Adam moments) indexed by
/// visiting order, which layer containers guarantee is stable.
pub trait Optimizer: Send {
    /// Applies one update step to `(param, grad)` pair number `index` and
    /// zeroes the gradient afterwards.
    fn update(&mut self, index: usize, param: &mut Matrix, grad: &mut Matrix);

    /// Called once per optimization step, before the per-parameter updates,
    /// so the optimizer can advance shared counters.
    fn begin_step(&mut self) {}

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used for fine-tuning schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
///
/// # Examples
///
/// ```
/// use eugene_nn::{Optimizer, Sgd};
/// use eugene_tensor::Matrix;
///
/// let mut opt = Sgd::new(0.1).with_momentum(0.9);
/// let mut param = Matrix::zeros(1, 1);
/// let mut grad = Matrix::filled(1, 1, 1.0);
/// opt.begin_step();
/// opt.update(0, &mut param, &mut grad);
/// assert!(param[(0, 0)] < 0.0);
/// assert_eq!(grad[(0, 0)], 0.0, "gradient is cleared after the step");
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum with coefficient `momentum`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= momentum < 1.0`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    fn velocity_for(&mut self, index: usize, shape: (usize, usize)) -> &mut Matrix {
        while self.velocity.len() <= index {
            self.velocity.push(Matrix::zeros(0, 0));
        }
        let v = &mut self.velocity[index];
        if v.shape() != shape {
            *v = Matrix::zeros(shape.0, shape.1);
        }
        v
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, index: usize, param: &mut Matrix, grad: &mut Matrix) {
        let lr = self.lr;
        let momentum = self.momentum;
        if momentum == 0.0 {
            param.add_scaled(grad, -lr);
        } else {
            let v = self.velocity_for(index, param.shape());
            v.scale_in_place(momentum);
            v.add_scaled(grad, 1.0);
            param.add_scaled(v, -lr);
        }
        grad.scale_in_place(0.0);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba), the optimizer used for all training runs in the
/// reproduction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    moments: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates Adam with the standard `beta1 = 0.9`, `beta2 = 0.999`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }

    fn moments_for(&mut self, index: usize, shape: (usize, usize)) -> &mut (Matrix, Matrix) {
        while self.moments.len() <= index {
            self.moments
                .push((Matrix::zeros(0, 0), Matrix::zeros(0, 0)));
        }
        let pair = &mut self.moments[index];
        if pair.0.shape() != shape {
            pair.0 = Matrix::zeros(shape.0, shape.1);
            pair.1 = Matrix::zeros(shape.0, shape.1);
        }
        pair
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, index: usize, param: &mut Matrix, grad: &mut Matrix) {
        let (lr, beta1, beta2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t.max(1));
        let (m, v) = self.moments_for(index, param.shape());
        let bias1 = 1.0 - beta1.powi(t);
        let bias2 = 1.0 - beta2.powi(t);
        for ((p, g), (m_i, v_i)) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
        {
            *m_i = beta1 * *m_i + (1.0 - beta1) * g;
            *v_i = beta2 * *v_i + (1.0 - beta2) * g * g;
            let m_hat = *m_i / bias1;
            let v_hat = *v_i / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
        grad.scale_in_place(0.0);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with the given optimizer and returns the
    /// final x.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut param = Matrix::from_rows(&[&[0.0]]);
        let mut grad = Matrix::zeros(1, 1);
        for _ in 0..steps {
            grad[(0, 0)] = 2.0 * (param[(0, 0)] - 3.0);
            opt.begin_step();
            opt.update(0, &mut param, &mut grad);
        }
        param[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "sgd converged to {x}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let x = minimize(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "momentum sgd converged to {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimize(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-2, "adam converged to {x}");
    }

    #[test]
    fn update_clears_gradient() {
        let mut opt = Adam::new(0.01);
        let mut param = Matrix::filled(2, 2, 1.0);
        let mut grad = Matrix::filled(2, 2, 0.5);
        opt.begin_step();
        opt.update(0, &mut param, &mut grad);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn per_index_state_is_independent() {
        let mut opt = Sgd::new(1.0).with_momentum(0.5);
        let mut p0 = Matrix::zeros(1, 1);
        let mut g0 = Matrix::filled(1, 1, 1.0);
        let mut p1 = Matrix::zeros(2, 2);
        let mut g1 = Matrix::filled(2, 2, 1.0);
        opt.begin_step();
        opt.update(0, &mut p0, &mut g0);
        opt.update(1, &mut p1, &mut g1);
        assert_eq!(p0[(0, 0)], -1.0);
        assert_eq!(p1[(1, 1)], -1.0);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_learning_rate() {
        Sgd::new(0.0);
    }
}
