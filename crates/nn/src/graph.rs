//! A small op-graph IR for one serving stage of a [`crate::StagedNetwork`].
//!
//! Stages historically executed as fixed layer walks: each dispatch
//! re-traversed the `Sequential` block, allocating an intermediate per
//! layer and leaving the elementwise tail (bias add, relu) as separate
//! passes over memory the GEMM had just written. Lifting a stage onto an
//! explicit graph of matmul / bias / activation / residual-add nodes
//! separates *what* a stage computes from *how* it runs, which is what
//! lets [`crate::compile`] topo-schedule the nodes, fuse elementwise
//! chains into the GEMM epilogue, and cache the resulting kernel
//! sequence per batch shape.
//!
//! The IR is deliberately minimal: node payloads reference network
//! layers by position ([`LayerRef`]), never by snapshot, so a compiled
//! graph stays valid across weight updates (plan caching layers
//! generation tags on top — see [`crate::compile::PlanCache`]).

use eugene_tensor::Matrix;

/// Index of a node within its [`OpGraph`].
pub type NodeId = usize;

/// A position-based reference to a `Linear` layer inside a
/// [`crate::StagedNetwork`]: resolved against the live network at
/// execution time, so plans never serve stale weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerRef {
    /// `network.stages()[stage].layers()[layer]`.
    Trunk { stage: usize, layer: usize },
    /// `network.heads()[stage]`.
    Head { stage: usize },
}

/// The elementwise activation functions the IR can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    Relu,
    Tanh,
}

impl ActKind {
    /// Applies the activation to one element — the same scalar ops, in
    /// the same order, as [`crate::Activation`]'s layer walk.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActKind::Relu => x.max(0.0),
            ActKind::Tanh => x.tanh(),
        }
    }
}

/// Which external value feeds an [`Op::Source`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// The previous stage's hidden activations (or the raw input for
    /// stage 0).
    Hidden,
    /// The raw network input, consumed by the input-skip shortcut.
    RawInput,
}

/// What a graph output feeds downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputRole {
    /// The stage's hidden activations, carried to the next stage.
    Hidden,
    /// The stage head's class logits.
    Logits,
}

/// One operation node. Inputs are edges to earlier nodes by [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// An external input to the stage.
    Source(SourceKind),
    /// Column-wise concatenation `[lhs | rhs]` (the input-skip shortcut).
    Concat { lhs: NodeId, rhs: NodeId },
    /// `input · W` for the referenced layer's weights.
    MatMul { input: NodeId, layer: LayerRef },
    /// `input + b` (row broadcast) for the referenced layer's bias.
    BiasAdd { input: NodeId, layer: LayerRef },
    /// Elementwise activation.
    Activation { input: NodeId, kind: ActKind },
    /// Elementwise `lhs + rhs` (shortcut networks that add instead of
    /// concatenating).
    ResidualAdd { lhs: NodeId, rhs: NodeId },
    /// Marks `input` as externally visible.
    Output { input: NodeId, role: OutputRole },
}

impl Op {
    /// The node's input edges, in evaluation order.
    pub fn inputs(&self) -> Vec<NodeId> {
        match *self {
            Op::Source(_) => Vec::new(),
            Op::MatMul { input, .. }
            | Op::BiasAdd { input, .. }
            | Op::Activation { input, .. }
            | Op::Output { input, .. } => vec![input],
            Op::Concat { lhs, rhs } | Op::ResidualAdd { lhs, rhs } => vec![lhs, rhs],
        }
    }
}

/// A node plus its inferred output width (columns); rows are the batch
/// dimension, fixed at plan-compile time.
#[derive(Debug, Clone)]
pub struct Node {
    pub op: Op,
    pub cols: usize,
}

/// A directed acyclic op graph describing one stage's computation.
///
/// Nodes are appended via [`OpGraph::add`]; edges point backwards to
/// already-added nodes, so insertion order is *a* valid evaluation
/// order, but consumers must not rely on it — [`OpGraph::topo_order`]
/// computes a schedule from the edge structure alone.
#[derive(Debug, Clone, Default)]
pub struct OpGraph {
    nodes: Vec<Node>,
}

impl OpGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node with the given output width, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any referenced input id does not exist yet.
    pub fn add(&mut self, op: Op, cols: usize) -> NodeId {
        for input in op.inputs() {
            assert!(
                input < self.nodes.len(),
                "op references node {input} before it exists"
            );
        }
        self.nodes.push(Node { op, cols });
        self.nodes.len() - 1
    }

    /// The nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The ids of every [`Op::Output`] node, in insertion order.
    pub fn outputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Output { .. }))
            .map(|(id, _)| id)
    }

    /// Kahn topological sort: returns every node id ordered so each
    /// node appears after all of its inputs. Ties break on node id, so
    /// the schedule is deterministic. The graph is acyclic by
    /// construction ([`OpGraph::add`] only accepts backward edges), so
    /// this always yields all nodes.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            for input in node.op.inputs() {
                indegree[id] += 1;
                consumers[input].push(id);
            }
        }
        // A BinaryHeap would also work; with graphs this small a linear
        // scan for the minimum ready id keeps it allocation-light and
        // just as deterministic.
        let mut ready: Vec<NodeId> = (0..n).filter(|&id| indegree[id] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(pos) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &id)| id)
            .map(|(pos, _)| pos)
        {
            let id = ready.swap_remove(pos);
            order.push(id);
            for &c in &consumers[id] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "op graph must be acyclic");
        order
    }

    /// Per-node consumer counts — the fusion pass only folds a chain
    /// link whose producer feeds exactly one consumer.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for input in node.op.inputs() {
                counts[input] += 1;
            }
        }
        counts
    }

    /// Reference interpreter: evaluates the graph one node at a time
    /// with no fusion, no arenas, and fresh allocations — the oracle
    /// the compiled-plan parity tests compare against. `resolve` maps a
    /// [`LayerRef`] to its live weights/bias.
    pub fn eval_reference(
        &self,
        hidden: &Matrix,
        raw: &Matrix,
        resolve: &dyn Fn(LayerRef) -> (Matrix, Vec<f32>),
    ) -> Vec<Matrix> {
        let mut values: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        let mut outputs = Vec::new();
        for id in self.topo_order() {
            let value = match self.nodes[id].op {
                Op::Source(SourceKind::Hidden) => hidden.clone(),
                Op::Source(SourceKind::RawInput) => raw.clone(),
                Op::Concat { lhs, rhs } => values[lhs]
                    .as_ref()
                    .unwrap()
                    .hconcat(values[rhs].as_ref().unwrap()),
                Op::MatMul { input, layer } => {
                    let (weights, _) = resolve(layer);
                    values[input].as_ref().unwrap().matmul(&weights)
                }
                Op::BiasAdd { input, layer } => {
                    let (_, bias) = resolve(layer);
                    let mut out = values[input].as_ref().unwrap().clone();
                    out.add_row_broadcast(&bias);
                    out
                }
                Op::Activation { input, kind } => {
                    values[input].as_ref().unwrap().map(|x| kind.apply(x))
                }
                Op::ResidualAdd { lhs, rhs } => {
                    values[lhs].as_ref().unwrap() + values[rhs].as_ref().unwrap()
                }
                Op::Output { input, .. } => {
                    let v = values[input].as_ref().unwrap().clone();
                    outputs.push(v.clone());
                    v
                }
            };
            values[id] = Some(value);
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> OpGraph {
        // hidden -> matmul -> (relu, tanh) -> residual-add -> output
        let mut g = OpGraph::new();
        let src = g.add(Op::Source(SourceKind::Hidden), 4);
        let mm = g.add(
            Op::MatMul {
                input: src,
                layer: LayerRef::Trunk { stage: 0, layer: 0 },
            },
            4,
        );
        let relu = g.add(
            Op::Activation {
                input: mm,
                kind: ActKind::Relu,
            },
            4,
        );
        let tanh = g.add(
            Op::Activation {
                input: mm,
                kind: ActKind::Tanh,
            },
            4,
        );
        let add = g.add(
            Op::ResidualAdd {
                lhs: relu,
                rhs: tanh,
            },
            4,
        );
        g.add(
            Op::Output {
                input: add,
                role: OutputRole::Hidden,
            },
            4,
        );
        g
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order();
        assert_eq!(order.len(), g.len());
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.len()];
            for (i, &id) in order.iter().enumerate() {
                pos[id] = i;
            }
            pos
        };
        for (id, node) in g.nodes().iter().enumerate() {
            for input in node.op.inputs() {
                assert!(pos[input] < pos[id], "node {id} scheduled before input");
            }
        }
    }

    #[test]
    fn consumer_counts_see_fanout() {
        let g = diamond();
        let counts = g.consumer_counts();
        assert_eq!(counts[1], 2, "matmul feeds both activations");
        assert_eq!(counts[4], 1, "residual feeds only the output");
    }

    #[test]
    #[should_panic(expected = "before it exists")]
    fn forward_edges_are_rejected() {
        let mut g = OpGraph::new();
        g.add(
            Op::Activation {
                input: 3,
                kind: ActKind::Relu,
            },
            4,
        );
    }

    #[test]
    fn reference_interpreter_evaluates_diamond() {
        let g = diamond();
        let w = Matrix::identity(4);
        let resolve = move |_: LayerRef| (w.clone(), vec![0.0; 4]);
        let hidden = Matrix::from_rows(&[&[1.0, -2.0, 0.5, -0.5]]);
        let outs = g.eval_reference(&hidden, &hidden, &resolve);
        assert_eq!(outs.len(), 1);
        // relu(x) + tanh(x) element-wise through an identity matmul.
        let expect: Vec<f32> = hidden
            .as_slice()
            .iter()
            .map(|&x| x.max(0.0) + x.tanh())
            .collect();
        assert_eq!(outs[0].as_slice(), &expect[..]);
    }
}
