//! Offline stand-in for the `serde` crate.
//!
//! The build environment is network-isolated, so this crate implements a
//! compact serialization framework with the same *spelling* as serde —
//! `Serialize`/`Deserialize` traits, `#[derive(Serialize, Deserialize)]`,
//! `#[serde(skip)]`, `#[serde(skip, default = "path")]` — over a single
//! in-memory [`Value`] data model. `serde_json` (the sibling stand-in)
//! renders and parses that model as JSON.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! `Serialize` produces a [`Value`] and `Deserialize` consumes one. Every
//! use in this workspace goes through `serde_json`, for which that model
//! is sufficient.
//!
//! # Examples
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point {
//!     x: f64,
//!     y: f64,
//! }
//!
//! let v = serde::Serialize::serialize(&Point { x: 1.0, y: 2.0 });
//! let back: Point = serde::Deserialize::deserialize(&v).unwrap();
//! assert_eq!(back, Point { x: 1.0, y: 2.0 });
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model connecting `Serialize` and `Deserialize`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a key in object entries (helper used by derived code).
pub fn obj_get<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }

    /// A missing-field error for `type`.`field`.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self::custom(format!("missing field `{field}` for `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a value of `Self` out of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `value` has the wrong shape.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = String::deserialize(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so output is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}

tuple_impls!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        // Matches real serde's {secs, nanos} encoding.
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            ("nanos".to_owned(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom("expected {secs, nanos} object for Duration"))?;
        let secs = obj_get(entries, "secs")
            .map(u64::deserialize)
            .transpose()?
            .ok_or_else(|| Error::missing_field("secs", "Duration"))?;
        let nanos = obj_get(entries, "nanos")
            .map(u32::deserialize)
            .transpose()?
            .ok_or_else(|| Error::missing_field("nanos", "Duration"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(i32::deserialize(&(-7i32).serialize()), Ok(-7));
        assert_eq!(f32::deserialize(&1.25f32.serialize()), Ok(1.25));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_owned().serialize()),
            Ok("hi".to_owned())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()), Ok(None));
        let d = Duration::new(3, 500);
        assert_eq!(Duration::deserialize(&d.serialize()), Ok(d));
        let t = (1u8, "x".to_owned());
        assert_eq!(<(u8, String)>::deserialize(&t.serialize()), Ok(t));
    }

    #[test]
    fn map_round_trips_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_owned(), 2u32);
        m.insert("a".to_owned(), 1u32);
        let v = m.serialize();
        let entries = v.as_object().unwrap();
        assert_eq!(entries[0].0, "a");
        assert_eq!(HashMap::<String, u32>::deserialize(&v), Ok(m));
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(bool::deserialize(&Value::U64(1)).is_err());
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert!(Vec::<u8>::deserialize(&Value::Bool(false)).is_err());
    }
}
