//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! sibling `serde` stand-in by hand-parsing the item token stream (no
//! `syn`/`quote`, which are unavailable offline). Supported shapes cover
//! everything this workspace derives:
//!
//! - structs with named fields, tuple structs, unit structs;
//! - enums with unit, tuple, and struct variants (externally tagged);
//! - `#[serde(skip)]` and `#[serde(skip, default = "path")]` on named
//!   struct fields.
//!
//! Generic types are intentionally unsupported (none are derived in this
//! workspace); deriving one produces a compile error naming this crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Per-field `#[serde(...)]` options.
#[derive(Default, Clone)]
struct SerdeAttrs {
    skip: bool,
    default_path: Option<String>,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    data: Data,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::Struct(fields) => serialize_fields_expr(fields, &item.name, FieldAccess::SelfDot),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&serialize_variant_arm(&item.name, v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::Struct(fields) => deserialize_fields_expr(fields, &item.name, None),
        Data::Enum(variants) => deserialize_enum_expr(&item.name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// How the serializer reaches a field: `self.name` or a bound local.
enum FieldAccess {
    SelfDot,
    Local,
}

fn serialize_fields_expr(fields: &Fields, ty: &str, access: FieldAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_owned(),
        Fields::Tuple(1) => match access {
            FieldAccess::SelfDot => "::serde::Serialize::serialize(&self.0)".to_owned(),
            FieldAccess::Local => "::serde::Serialize::serialize(__f0)".to_owned(),
        },
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| match access {
                    FieldAccess::SelfDot => format!("::serde::Serialize::serialize(&self.{i})"),
                    FieldAccess::Local => format!("::serde::Serialize::serialize(__f{i})"),
                })
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(named) => {
            let mut pushes = String::new();
            for f in named {
                if f.attrs.skip {
                    continue;
                }
                let expr = match access {
                    FieldAccess::SelfDot => format!("&self.{}", f.name),
                    FieldAccess::Local => f.name.clone(),
                };
                pushes.push_str(&format!(
                    "__fields.push((\"{name}\".to_owned(), ::serde::Serialize::serialize({expr})));\n",
                    name = f.name
                ));
            }
            format!(
                "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); /* {ty} */ {pushes} ::serde::Value::Object(__fields) }}"
            )
        }
    }
}

fn serialize_variant_arm(ty: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => {
            format!("{ty}::{vname} => ::serde::Value::String(\"{vname}\".to_owned()),\n")
        }
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let inner = serialize_fields_expr(&v.fields, ty, FieldAccess::Local);
            format!(
                "{ty}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_owned(), {inner})]),\n",
                binds = binders.join(", ")
            )
        }
        Fields::Named(named) => {
            let binders: Vec<String> = named.iter().map(|f| f.name.clone()).collect();
            let inner = serialize_fields_expr(&v.fields, ty, FieldAccess::Local);
            format!(
                "{ty}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_owned(), {inner})]),\n",
                binds = binders.join(", ")
            )
        }
    }
}

/// Expression deserializing `fields` from `value` (or from a bound
/// `__inner` value for enum variants) into constructor `ctor`.
fn deserialize_fields_expr(fields: &Fields, ctor: &str, source: Option<&str>) -> String {
    let src = source.unwrap_or("value");
    match fields {
        Fields::Unit => format!("Ok({ctor})"),
        Fields::Tuple(1) => {
            format!("Ok({ctor}(::serde::Deserialize::deserialize({src})?))")
        }
        Fields::Tuple(n) => {
            let mut items = String::new();
            for i in 0..*n {
                items.push_str(&format!(
                    "::serde::Deserialize::deserialize(&__items[{i}])?,"
                ));
            }
            format!(
                "{{ let __items = {src}.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for `{ctor}`\"))?;\n\
                 if __items.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for `{ctor}`\")); }}\n\
                 Ok({ctor}({items})) }}"
            )
        }
        Fields::Named(named) => {
            let mut inits = String::new();
            for f in named {
                if f.attrs.skip {
                    let default = match &f.attrs.default_path {
                        Some(path) => format!("{path}()"),
                        None => "::std::default::Default::default()".to_owned(),
                    };
                    inits.push_str(&format!("{name}: {default},\n", name = f.name));
                } else {
                    inits.push_str(&format!(
                        "{name}: match ::serde::obj_get(__entries, \"{name}\") {{\n\
                             Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
                             None => return Err(::serde::Error::missing_field(\"{name}\", \"{ctor}\")),\n\
                         }},\n",
                        name = f.name
                    ));
                }
            }
            format!(
                "{{ let __entries = {src}.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for `{ctor}`\"))?;\n\
                 Ok({ctor} {{ {inits} }}) }}"
            )
        }
    }
}

fn deserialize_enum_expr(ty: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!("\"{vname}\" => Ok({ty}::{vname}),\n"));
                // Also accept the tagged-null spelling for robustness.
                tagged_arms.push_str(&format!("\"{vname}\" => Ok({ty}::{vname}),\n"));
            }
            fields => {
                let ctor = format!("{ty}::{vname}");
                let expr = deserialize_fields_expr(fields, &ctor, Some("__inner"));
                tagged_arms.push_str(&format!("\"{vname}\" => {expr},\n"));
            }
        }
    }
    format!(
        "match value {{\n\
             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => Err(::serde::Error::custom(format!(\
                     \"unknown variant `{{__other}}` for `{ty}`\"))),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\n\
                     __other => Err(::serde::Error::custom(format!(\
                         \"unknown variant `{{__other}}` for `{ty}`\"))),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::Error::custom(format!(\
                 \"expected enum `{ty}`, got {{__other:?}}\"))),\n\
         }}"
    )
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    fn peek_punct(&self) -> Option<char> {
        match self.peek() {
            Some(TokenTree::Punct(p)) => Some(p.as_char()),
            _ => None,
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, got {other:?}"),
        }
    }

    /// Consumes leading attributes, returning any `#[serde(...)]` options.
    fn parse_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while self.peek_punct() == Some('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: malformed attribute, got {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if inner.peek_ident().as_deref() == Some("serde") {
                inner.next();
                if let Some(TokenTree::Group(args)) = inner.next() {
                    parse_serde_args(args.stream(), &mut attrs);
                }
            }
        }
        attrs
    }

    /// Consumes `pub`, `pub(...)` if present.
    fn parse_vis(&mut self) {
        if self.peek_ident().as_deref() == Some("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Skips a type (or discriminant expression), stopping at a top-level
    /// comma. Tracks `<`/`>` nesting; bracketed groups arrive pre-nested.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                }
                if c == '>' {
                    angle_depth -= 1;
                }
            }
            self.next();
        }
    }
}

fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let mut cur = Cursor::new(stream);
    while !cur.at_end() {
        match cur.next() {
            Some(TokenTree::Ident(i)) => match i.to_string().as_str() {
                "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                "default" => {
                    if cur.peek_punct() == Some('=') {
                        cur.next();
                        match cur.next() {
                            Some(TokenTree::Literal(lit)) => {
                                let raw = lit.to_string();
                                attrs.default_path = Some(raw.trim_matches('"').to_owned());
                            }
                            other => panic!(
                                "serde_derive: expected string after `default =`, got {other:?}"
                            ),
                        }
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            },
            Some(TokenTree::Punct(_)) => {}
            Some(other) => panic!("serde_derive: unexpected token in serde attribute: {other:?}"),
            None => break,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.parse_attrs();
    cur.parse_vis();
    let kind = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if cur.peek_punct() == Some('<') {
        panic!(
            "serde_derive (offline stand-in): generic type `{name}` is not supported; \
             write manual Serialize/Deserialize impls instead"
        );
    }
    match kind.as_str() {
        "struct" => {
            let fields = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_field_count(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
            };
            Item {
                name,
                data: Data::Struct(fields),
            }
        }
        "enum" => {
            let group = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
            };
            Item {
                name,
                data: Data::Enum(parse_variants(group.stream())),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.parse_attrs();
        cur.parse_vis();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        cur.skip_until_comma();
        if cur.peek_punct() == Some(',') {
            cur.next();
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_tuple_field_count(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while !cur.at_end() {
        cur.parse_attrs();
        cur.parse_vis();
        cur.skip_until_comma();
        count += 1;
        if cur.peek_punct() == Some(',') {
            cur.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.parse_attrs();
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = parse_tuple_field_count(g.stream());
                cur.next();
                Fields::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                cur.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if cur.peek_punct() == Some('=') {
            cur.next();
            cur.skip_until_comma();
        }
        if cur.peek_punct() == Some(',') {
            cur.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}
