//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — as a plain wall-clock
//! runner: short warm-up, fixed sample count, median/mean per-iteration
//! times printed to stdout. No statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

/// Re-export so benches can `criterion::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly a millisecond so timer overhead is amortised.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        const SAMPLES: usize = 12;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn report(group: Option<&str>, label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let name = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_owned(),
    };
    println!("{name:<48} median {median:>12.3?}   mean {mean:>12.3?}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        routine(&mut bencher);
        report(Some(&self.name), &id.label, &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        routine(&mut bencher, input);
        report(Some(&self.name), &id.label, &bencher.samples);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    pub fn bench_function<R>(&mut self, label: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        routine(&mut bencher);
        report(None, label, &bencher.samples);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Bundles bench functions under a name, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running each group (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(21) * 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn runner_executes_benches() {
        benches();
    }
}
