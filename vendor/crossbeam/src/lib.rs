//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` API surface the workspace uses —
//! cloneable multi-producer multi-consumer channels with `send`, `recv`,
//! `try_recv`, and `recv_timeout`, plus a blocking [`select!`] over
//! multiple receivers — implemented as a `Mutex<VecDeque>` plus
//! `Condvar`. Disconnection semantics match crossbeam: a channel is
//! disconnected once every `Sender` (for receivers) or every `Receiver`
//! (for senders) has been dropped.

pub mod channel;

/// Blocks until one of several receive operations can complete, then runs
/// that arm — the `crossbeam::channel` `select!` surface this workspace
/// uses: `recv($rx) -> msg => body` arms only, where `msg` binds a
/// `Result<T, RecvError>` (`Err` once the channel is drained and
/// disconnected, exactly like crossbeam).
///
/// Arms are tried in order (earlier arms have priority when several are
/// ready); when none is ready the calling thread parks on a
/// [`channel::SelectWaker`] registered with every watched channel, so
/// waiting consumes no CPU. Like crossbeam, an arm over a disconnected
/// channel is always ready (with `Err`): callers looping over a `select!`
/// must stop selecting on a channel once it reports `Err`, or the loop
/// spins.
///
/// Arm bodies must not use unlabeled `break`/`continue` (the expansion
/// wraps the wait in an internal loop).
///
/// # Examples
///
/// ```
/// use crossbeam::channel::unbounded;
///
/// let (tx_a, rx_a) = unbounded::<u32>();
/// let (_tx_b, rx_b) = unbounded::<u32>();
/// tx_a.send(7).unwrap();
/// let got = crossbeam::select! {
///     recv(rx_a) -> msg => msg.unwrap(),
///     recv(rx_b) -> msg => msg.unwrap(),
/// };
/// assert_eq!(got, 7);
/// ```
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $msg:pat => $body:expr),+ $(,)?) => {{
        '__select: loop {
            // Fast path: poll each arm in priority order.
            $(
                if let Some(__result) = $crate::channel::Receiver::try_recv_for_select(&$rx) {
                    let $msg = __result;
                    break '__select ({ $body });
                }
            )+
            // Slow path: register with every channel, re-check (a send
            // racing the registration must not be lost), park, retry.
            let __waker = $crate::channel::SelectWaker::new();
            $( $crate::channel::Receiver::register_select(&$rx, &__waker); )+
            let __ready = false $(|| $crate::channel::Receiver::select_ready(&$rx))+;
            if !__ready {
                __waker.park();
            }
            $( $crate::channel::Receiver::unregister_select(&$rx, &__waker); )+
        }
    }};
}
