//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` API surface the workspace uses —
//! cloneable multi-producer multi-consumer channels with `send`, `recv`,
//! `try_recv`, and `recv_timeout` — implemented as a `Mutex<VecDeque>`
//! plus `Condvar`. Disconnection semantics match crossbeam: a channel is
//! disconnected once every `Sender` (for receivers) or every `Receiver`
//! (for senders) has been dropped.

pub mod channel;
