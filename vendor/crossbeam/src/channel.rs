//! MPMC channels with crossbeam-compatible types and error enums.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Shared state between all handles of one channel.
struct Shared<T> {
    queue: Mutex<Inner<T>>,
    not_empty: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates an unbounded MPMC channel.
///
/// # Examples
///
/// ```
/// let (tx, rx) = crossbeam::channel::unbounded();
/// tx.send(1).unwrap();
/// assert_eq!(rx.recv(), Ok(1));
/// ```
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message, waking one blocked receiver.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.items.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().items.is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(item) = inner.items.pop_front() {
            return Ok(item);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks until a message arrives, the channel disconnects, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().items.is_empty()
    }

    /// A draining blocking iterator: yields until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A draining non-blocking iterator: yields queued messages only.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking iterator over received messages; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over queued messages; see [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning blocking iterator over received messages.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drained_before_disconnect_reported() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_timeout_gets_late_message() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(7u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = thread::spawn(move || rx.iter().count());
        let b = thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn many_producers_many_consumers() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
