//! MPMC channels with crossbeam-compatible types and error enums.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Shared state between all handles of one channel.
struct Shared<T> {
    queue: Mutex<Inner<T>>,
    not_empty: Condvar,
    /// Parked `select!` operations to notify on send/disconnect, in
    /// addition to `not_empty` (which only wakes plain `recv` callers).
    observers: Mutex<Vec<Arc<SelectWaker>>>,
}

struct Inner<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn notify_observers(&self) {
        let observers = self
            .observers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for waker in observers.iter() {
            waker.notify();
        }
    }
}

/// One parked [`select!`] operation: a flag-plus-condvar registered with
/// every channel an arm watches, notified on each send and on
/// disconnect.
///
/// The lost-wakeup-free protocol is the classic one: register with every
/// channel, *then* re-check readiness, and only park if nothing is ready
/// — any send that missed the registration is visible to the re-check,
/// and any send after it notifies the flag before [`SelectWaker::park`]
/// can sleep on it.
pub struct SelectWaker {
    notified: Mutex<bool>,
    cond: Condvar,
}

impl SelectWaker {
    /// A fresh, unnotified waker.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            notified: Mutex::new(false),
            cond: Condvar::new(),
        })
    }

    fn notify(&self) {
        let mut flag = self.notified.lock().unwrap_or_else(PoisonError::into_inner);
        *flag = true;
        drop(flag);
        self.cond.notify_all();
    }

    /// Blocks until notified (or a defensive internal timeout elapses, in
    /// which case the caller simply re-checks its channels).
    pub fn park(&self) {
        let mut flag = self.notified.lock().unwrap_or_else(PoisonError::into_inner);
        while !*flag {
            let (guard, timeout) = self
                .cond
                .wait_timeout(flag, Duration::from_millis(500))
                .unwrap_or_else(PoisonError::into_inner);
            flag = guard;
            if timeout.timed_out() {
                break;
            }
        }
        *flag = false;
    }
}

/// Creates an unbounded MPMC channel.
///
/// # Examples
///
/// ```
/// let (tx, rx) = crossbeam::channel::unbounded();
/// tx.send(1).unwrap();
/// assert_eq!(rx.recv(), Ok(1));
/// ```
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        observers: Mutex::new(Vec::new()),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message, waking one blocked receiver.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.items.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        self.shared.notify_observers();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().items.is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
            self.shared.notify_observers();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(item) = inner.items.pop_front() {
            return Ok(item);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks until a message arrives, the channel disconnects, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().items.is_empty()
    }

    /// One [`select!`] attempt: `Some(Ok(_))` on a queued message,
    /// `Some(Err(RecvError))` when drained and disconnected, `None` when
    /// empty but still connected (the arm is not ready).
    #[doc(hidden)]
    pub fn try_recv_for_select(&self) -> Option<Result<T, RecvError>> {
        match self.try_recv() {
            Ok(item) => Some(Ok(item)),
            Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
            Err(TryRecvError::Empty) => None,
        }
    }

    /// Whether a [`select!`] arm over this channel could fire right now
    /// (a message is queued, or the channel is disconnected).
    #[doc(hidden)]
    pub fn select_ready(&self) -> bool {
        let inner = self.shared.lock();
        !inner.items.is_empty() || inner.senders == 0
    }

    /// Registers a parked [`select!`] waker to be notified on the next
    /// send or disconnect.
    #[doc(hidden)]
    pub fn register_select(&self, waker: &Arc<SelectWaker>) {
        self.shared
            .observers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(waker));
    }

    /// Removes a previously registered [`select!`] waker.
    #[doc(hidden)]
    pub fn unregister_select(&self, waker: &Arc<SelectWaker>) {
        self.shared
            .observers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|observer| !Arc::ptr_eq(observer, waker));
    }

    /// A draining blocking iterator: yields until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A draining non-blocking iterator: yields queued messages only.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking iterator over received messages; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over queued messages; see [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning blocking iterator over received messages.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drained_before_disconnect_reported() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_timeout_gets_late_message() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(7u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = thread::spawn(move || rx.iter().count());
        let b = thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn select_takes_the_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(5).unwrap();
        let got = crate::select! {
            recv(rx_a) -> msg => msg.unwrap(),
            recv(rx_b) -> msg => msg.unwrap() + 100,
        };
        assert_eq!(got, 5);
    }

    #[test]
    fn select_prefers_earlier_arms_when_several_are_ready() {
        let (tx_a, rx_a) = unbounded::<&str>();
        let (tx_b, rx_b) = unbounded::<&str>();
        tx_b.send("b").unwrap();
        tx_a.send("a").unwrap();
        let got = crate::select! {
            recv(rx_a) -> msg => msg.unwrap(),
            recv(rx_b) -> msg => msg.unwrap(),
        };
        assert_eq!(got, "a", "arm order is priority order");
    }

    #[test]
    fn select_blocks_until_a_late_send_and_wakes_promptly() {
        let (tx_a, rx_a) = unbounded::<u8>();
        let (_tx_b, rx_b) = unbounded::<u8>();
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx_a.send(9).unwrap();
            Instant::now()
        });
        let got = crate::select! {
            recv(rx_a) -> msg => msg.unwrap(),
            recv(rx_b) -> msg => msg.unwrap(),
        };
        let woke = Instant::now();
        let sent = sender.join().unwrap();
        assert_eq!(got, 9);
        // The whole point of select over polling: the blocked thread is
        // woken by the send itself, not by a poll tick.
        assert!(
            woke.saturating_duration_since(sent) < Duration::from_millis(100),
            "select wake lagged the send by {:?}",
            woke.saturating_duration_since(sent)
        );
    }

    #[test]
    fn select_fires_err_on_disconnect() {
        let (tx_a, rx_a) = unbounded::<u8>();
        let (_tx_b, rx_b) = unbounded::<u8>();
        drop(tx_a);
        let disconnected = crate::select! {
            recv(rx_a) -> msg => msg.is_err(),
            recv(rx_b) -> msg => { let _ = msg; false },
        };
        assert!(disconnected, "drained+disconnected arm fires with Err");
    }

    #[test]
    fn select_leaves_no_observer_registered() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        let _ = crate::select! { recv(rx) -> msg => msg.unwrap() };
        // Fast path never registers; slow path must unregister: either
        // way the observer list ends empty so senders stay O(1).
        assert_eq!(
            rx.shared
                .observers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            0
        );
        let waiter = {
            let rx = rx.clone();
            thread::spawn(move || crate::select! { recv(rx) -> msg => msg.unwrap() })
        };
        thread::sleep(Duration::from_millis(20));
        tx.send(2).unwrap();
        assert_eq!(waiter.join().unwrap(), 2);
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            let len = rx
                .shared
                .observers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len();
            if len == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "parked waker never unregistered");
            thread::yield_now();
        }
    }

    #[test]
    fn many_producers_many_consumers() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
