//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros, [`ProptestConfig::with_cases`], range/tuple/`vec`/[`any`]
//! strategies, and the `prop_map`/`prop_flat_map` combinators.
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (deterministic across runs) and failing cases are **not shrunk** — the
//! failure message reports the case number and the failed assertion instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------

/// Deterministic generator handed to strategies during a test run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, 1]` (both endpoints reachable).
    fn closed_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 * span >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 * span >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float ranges.
macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty float range strategy");
                let unit = rng.closed_unit_f64() as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// Tuple strategies.
macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy backing [`any`] for primitives.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! any_via {
    ($($t:ty => |$rng:ident| $body:expr;)*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, $rng: &mut TestRng) -> $t {
                $body
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

any_via! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    f32 => |rng| (rng.unit_f64() as f32) * 2.0 - 1.0;
    f64 => |rng| rng.unit_f64() * 2.0 - 1.0;
}

// ---------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------

/// Length bounds for collection strategies: `[min, max]` inclusive.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Some with probability 3/4, as in the real crate's default.
        if rng.next_u64() & 3 != 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

pub mod option {
    use super::{OptionStrategy, Strategy};

    /// Strategy producing `Option`s of `inner`'s values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `prop::` namespace as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::{collection, option};
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum CaseError {
    /// An assertion failed; aborts the whole test.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
}

impl CaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        CaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        CaseError::Reject(message.into())
    }
}

impl fmt::Display for CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseError::Fail(m) => write!(f, "case failed: {m}"),
            CaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Drives `body` over `config.cases` generated cases. Called by the
/// expansion of [`proptest!`]; not public API in the real crate.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), CaseError>,
{
    // Stable per-test seed so failures reproduce across runs.
    let mut seed = 0xEC5E_5EEDu64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
    }
    let mut rng = TestRng::new(seed);
    let max_rejects = (config.cases as u64) * 16 + 256;
    let mut rejects = 0u64;
    let mut case = 0u32;
    while case < config.cases {
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(CaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest `{test_name}`: too many rejected cases \
                         ({rejects}) — loosen prop_assume! conditions"
                    );
                }
            }
            Err(CaseError::Fail(message)) => {
                panic!(
                    "proptest `{test_name}` failed at case {case}/{}: {message}",
                    config.cases
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn` items whose
/// arguments use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_proptest(&__config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                #[allow(unreachable_code)]
                (|| -> ::std::result::Result<(), $crate::CaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::CaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case (re-drawn with fresh inputs) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let x = Strategy::generate(&(10usize..20), &mut rng);
            assert!((10..20).contains(&x));
            let y = Strategy::generate(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&y));
            let f = Strategy::generate(&(0.5f32..1.5), &mut rng);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0.0f64..1.0, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = Strategy::generate(&prop::collection::vec(0u32..9, 4usize), &mut rng);
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_tuples((a, b) in (0usize..10, 0usize..10), flip in any::<bool>()) {
            prop_assume!(a != 3);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(usize::from(flip) <= 1, true);
        }

        #[test]
        fn macro_supports_combinators(v in prop::collection::vec(0i32..5, 1..8)
            .prop_map(|v| v.len()))
        {
            prop_assert!((1..8).contains(&v));
        }
    }
}
