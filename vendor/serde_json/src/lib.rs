//! Offline stand-in for `serde_json`.
//!
//! Serializes the sibling `serde` stand-in's [`Value`] model to JSON text and
//! parses JSON text back into it. Covers the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`].
//!
//! Divergences from the real crate that are acceptable here:
//! - floats whose fractional part is zero print as `1` rather than `1.0`
//!   (the parser and `Deserialize` impls accept either on the way back in);
//! - non-finite floats serialize as `null` (the real crate errors).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure with a byte offset when parsing.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self {
            message: e.to_string(),
            offset: None,
        }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-indented JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 is Rust's shortest-roundtrip formatting.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_text(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parses JSON bytes (UTF-8) and deserializes them into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::parse(format!("invalid UTF-8: {e}"), e.valid_up_to()))?;
    from_str(s)
}

/// Maximum nesting depth accepted by the parser; guards against stack
/// exhaustion on adversarial input.
const MAX_DEPTH: usize = 128;

fn parse_value_text(s: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse(
            "trailing characters after JSON value",
            parser.pos,
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{}`", byte as char),
                self.pos,
            ))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::parse("JSON nesting too deep", self.pos));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::parse(
                format!("unexpected character `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{keyword}`"), self.pos))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: expect a following \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::parse(
                                            "invalid low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code).ok_or_else(|| {
                                        Error::parse("invalid surrogate pair", self.pos)
                                    })?
                                } else {
                                    return Err(Error::parse("unpaired high surrogate", self.pos));
                                }
                            } else {
                                char::from_u32(high).ok_or_else(|| {
                                    Error::parse("invalid unicode escape", self.pos)
                                })?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is validated UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::parse("control character in string", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated unicode escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("invalid unicode escape", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if text == "-" || text.is_empty() {
            return Err(Error::parse("invalid number", start));
        }
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))?;
            Ok(Value::F64(x))
        } else if negative {
            let n: i64 = text
                .parse()
                .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))?;
            Ok(Value::I64(n))
        } else {
            let n: u64 = text
                .parse()
                .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))?;
            Ok(Value::U64(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );

        let x: f64 = from_str("1.5").unwrap();
        assert_eq!(x, 1.5);
        let n: u64 = from_str(" 42 ").unwrap();
        assert_eq!(n, 42);
        let s: String = from_str("\"a\\u0041b\"").unwrap();
        assert_eq!(s, "aAb");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1.0f64, 2.5, -3.25];
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(v, back);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<u32> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u32, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("--5").is_err());
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(from_str::<serde::Value>(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "\u{1F600}");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let x: f64 = from_str("null").unwrap();
        assert!(x.is_nan());
    }
}
