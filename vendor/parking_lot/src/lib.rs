//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository is network-isolated, so the
//! real `parking_lot` cannot be downloaded. This crate re-implements the
//! small slice of its API the workspace uses — `Mutex`, `RwLock`, and
//! `Condvar` with non-poisoning guards — on top of `std::sync`. A
//! poisoned std lock is recovered transparently, matching `parking_lot`'s
//! "no poisoning" semantics.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` returns the guard directly (no
/// `Result`), like `parking_lot::Mutex`.
///
/// # Examples
///
/// ```
/// let m = parking_lot::Mutex::new(5);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 6);
/// ```
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The std guard lives in an `Option` solely so [`Condvar`] can move it
/// out and back during a wait; it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with non-poisoning guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified; the guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        guard.guard = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_one();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        let result = cvar.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
