//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment is network-isolated, so this crate provides the
//! subset of `rand` the workspace uses: the [`Rng`] extension trait with
//! `gen`, `gen_range`, and `gen_bool`; [`SeedableRng`] with
//! `seed_from_u64`; [`rngs::StdRng`] (a xoshiro256++ generator seeded via
//! SplitMix64); and [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! The generator is deterministic per seed, so every seeded experiment in
//! the reproduction regenerates byte-for-byte — the streams simply differ
//! from upstream `rand`'s ChaCha12.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! ```

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw output —
/// the stand-in for `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as i8
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as i16
    }
}

impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire's
/// multiply-shift with rejection on the biased band.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let low = m as u64;
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every word is valid.
                    return Standard::sample(rng);
                }
                start.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing random-value extension trait.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-independent process entropy (the
    /// offline stand-in mixes the clock and a counter; prefer
    /// [`SeedableRng::seed_from_u64`] for reproducibility).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos ^ COUNTER.fetch_add(0x6a09e667f3bcc909, Ordering::Relaxed))
    }
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++, seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A small fast generator; same engine as [`StdRng`] in this stand-in.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random slice operations.

    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(8);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
