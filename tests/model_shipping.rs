//! The §II-B model-shipping loop across crates: train on the server,
//! reduce, serialize, "download" to a device, and serve skewed traffic
//! from the device cache with server escalation.

use eugene::compress::{skewed_stream, CacheDecision, CachedModelConfig, ModelCache};
use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::nn::{NetworkSnapshot, StagedNetwork};
use eugene::service::{Eugene, TrainRequest};
use eugene::tensor::seeded_rng;

fn datasets(seed: u64) -> (eugene::data::Dataset, eugene::data::Dataset) {
    let mut rng = seeded_rng(seed);
    let gen = SyntheticImages::new(
        SyntheticImagesConfig {
            num_classes: 6,
            dim: 12,
            easy_fraction: 0.8,
            medium_fraction: 0.15,
            ..Default::default()
        },
        &mut rng,
    );
    let (train, _) = gen.generate(700, &mut rng);
    let (base, _) = gen.generate(600, &mut rng);
    (train, base)
}

#[test]
fn reduce_serialize_ship_and_serve_from_cache() {
    let (train, base) = datasets(81);
    let mut server = Eugene::new(82);
    let full = server.train(TrainRequest::quick(&train)).expect("train");

    // Server-side reduction (§II-B node pruning + fine-tune).
    let reduced = server.reduce(full, 0.5, &train).expect("reduce");
    let full_info = server.model_info(full).unwrap();
    let reduced_info = server.model_info(reduced).unwrap();
    assert!(reduced_info.param_count < full_info.param_count);

    // Serialize the reduced model — the bytes that cross the network.
    let snapshot = server.export_model(reduced).expect("export");
    let wire = serde_json::to_vec(&snapshot).expect("serialize");
    let full_wire = serde_json::to_vec(&server.export_model(full).unwrap()).unwrap();
    assert!(
        wire.len() < full_wire.len(),
        "reduced model must be smaller on the wire: {} vs {}",
        wire.len(),
        full_wire.len()
    );

    // "Device" side: restore and verify behavioral equivalence.
    let parsed: NetworkSnapshot = serde_json::from_slice(&wire).expect("parse");
    let device_net = StagedNetwork::from_snapshot(&parsed).expect("restore");
    let sample = base.sample(0);
    let server_out = server.classify(reduced, sample).unwrap();
    let device_out = device_net.classify(sample);
    assert_eq!(server_out.len(), device_out.len());
    for (a, b) in server_out.iter().zip(&device_out) {
        assert_eq!(a.predicted, b.predicted);
        assert!((a.confidence - b.confidence).abs() < 1e-6);
    }

    // Frequent-classes cache deployment over skewed traffic.
    let mut rng = seeded_rng(83);
    let stream = skewed_stream(&base, &[1, 4], 0.8, 400, &mut rng);
    let mut cache = ModelCache::new(6, 0.999, 0.25, 50);
    for i in 0..120 {
        cache.record(stream.label(i));
    }
    assert!(cache.should_rebuild());
    let cached = server
        .build_cached_model(
            &train,
            &cache.cache_candidates(),
            &CachedModelConfig::default(),
        )
        .expect("build cache");
    cache.install(cached);

    let mut local = 0usize;
    let mut escalated = 0usize;
    let mut local_correct = 0usize;
    for i in 120..stream.len() {
        match cache.lookup(stream.sample(i)) {
            CacheDecision::Hit { class, .. } => {
                local += 1;
                if class == stream.label(i) {
                    local_correct += 1;
                }
            }
            CacheDecision::Miss => {
                escalated += 1;
                // The miss path still gets an answer from the server.
                let outs = server.classify(full, stream.sample(i)).unwrap();
                assert_eq!(outs.len(), 3);
            }
        }
    }
    assert!(local + escalated > 0);
    let hit_rate = local as f64 / (local + escalated) as f64;
    let hit_acc = local_correct as f64 / local.max(1) as f64;
    assert!(hit_rate > 0.4, "device cache hit rate {hit_rate:.2}");
    assert!(hit_acc > 0.6, "device cache hit accuracy {hit_acc:.2}");
}
