//! End-to-end integration across crates: the full Eugene service life
//! cycle from client data to scheduled, deadline-bounded serving.

use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::nn::TrainConfig;
use eugene::serve::{InferenceRequest, ServiceClass};
use eugene::service::{Eugene, SchedulerKind, ServeOptions, TrainRequest};
use eugene::tensor::seeded_rng;
use std::time::Duration;

/// Draws several datasets from ONE generator: splits must share class
/// prototypes or they describe different classification problems.
fn datasets(seed: u64, sizes: &[usize]) -> Vec<eugene::data::Dataset> {
    let mut rng = seeded_rng(seed);
    let gen = SyntheticImages::new(
        SyntheticImagesConfig {
            num_classes: 5,
            dim: 12,
            ..Default::default()
        },
        &mut rng,
    );
    sizes.iter().map(|&n| gen.generate(n, &mut rng).0).collect()
}

fn quick_train(eugene: &mut Eugene, data: &eugene::data::Dataset) -> eugene::service::ModelId {
    eugene
        .train(TrainRequest {
            data,
            architecture: None,
            train: TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
        })
        .expect("train")
}

#[test]
fn train_calibrate_serve_with_early_exit() {
    let mut parts = datasets(1, &[500, 300, 30]).into_iter();
    let (train, calib, stream) = (
        parts.next().unwrap(),
        parts.next().unwrap(),
        parts.next().unwrap(),
    );
    let mut eugene = Eugene::new(4);
    let model = quick_train(&mut eugene, &train);
    let outcome = eugene.calibrate(model, &calib).expect("calibrate");
    assert!(outcome.ece_after <= outcome.ece_before + 1e-9);

    let runtime = eugene
        .serve(
            model,
            &ServeOptions {
                scheduler: SchedulerKind::RtDeepIot { lookahead: 1 },
                num_workers: 2,
                // Calibration pulls confidence down toward accuracy, so
                // the early-exit bar sits just above chance-of-error.
                confidence_threshold: 0.78,
                ..ServeOptions::default()
            },
            Some(&train),
        )
        .expect("serve");
    let class = ServiceClass::new("test", Duration::from_secs(10));
    let mut answered = 0;
    let mut early = 0;
    let receivers: Vec<_> = (0..stream.len())
        .map(|i| {
            runtime.submit(InferenceRequest::new(
                stream.sample(i).to_vec(),
                class.clone(),
            ))
        })
        .collect();
    for (_, rx) in receivers {
        let response = rx.recv_timeout(Duration::from_secs(30)).expect("response");
        assert!(response.stages_executed >= 1);
        if response.is_answered() {
            answered += 1;
        }
        if response.stages_executed < 3 && !response.expired {
            early += 1;
            // Early exit only fires at or above the threshold.
            assert!(response.confidence.expect("confident") >= 0.78);
        }
    }
    assert_eq!(answered, stream.len());
    assert!(early > 0, "calibrated confident inputs should exit early");
    runtime.shutdown();
}

#[test]
fn all_scheduler_kinds_serve_requests() {
    let mut parts = datasets(5, &[400, 8]).into_iter();
    let (train, stream) = (parts.next().unwrap(), parts.next().unwrap());
    let mut eugene = Eugene::new(7);
    let model = quick_train(&mut eugene, &train);
    for scheduler in [
        SchedulerKind::RtDeepIot { lookahead: 2 },
        SchedulerKind::DynamicConstant { lookahead: 1 },
        SchedulerKind::DeadlineAwareRtDeepIot {
            lookahead: 1,
            slack: 2,
        },
        SchedulerKind::RoundRobin,
        SchedulerKind::Fifo,
    ] {
        let runtime = eugene
            .serve(
                model,
                &ServeOptions {
                    scheduler: scheduler.clone(),
                    num_workers: 2,
                    confidence_threshold: 1.0,
                    ..ServeOptions::default()
                },
                Some(&train),
            )
            .expect("serve");
        let class = ServiceClass::new("t", Duration::from_secs(10));
        let receivers: Vec<_> = (0..stream.len())
            .map(|i| {
                runtime.submit(InferenceRequest::new(
                    stream.sample(i).to_vec(),
                    class.clone(),
                ))
            })
            .collect();
        for (_, rx) in receivers {
            let response = rx.recv_timeout(Duration::from_secs(30)).expect("response");
            assert_eq!(
                response.stages_executed, 3,
                "{scheduler:?} should run all stages without early exit"
            );
        }
        runtime.shutdown();
    }
}

#[test]
fn reduction_keeps_the_model_usable_end_to_end() {
    let mut parts = datasets(8, &[500, 300]).into_iter();
    let (train, test) = (parts.next().unwrap(), parts.next().unwrap());
    let mut eugene = Eugene::new(10);
    let model = quick_train(&mut eugene, &train);
    let full_acc = eugene
        .evaluate(model, &test)
        .unwrap()
        .pop()
        .unwrap()
        .accuracy;
    let reduced = eugene.reduce(model, 0.5, &train).expect("reduce");
    let reduced_info = eugene.model_info(reduced).unwrap();
    let full_info = eugene.model_info(model).unwrap();
    assert!(reduced_info.param_count < full_info.param_count);
    let reduced_acc = eugene
        .evaluate(reduced, &test)
        .unwrap()
        .pop()
        .unwrap()
        .accuracy;
    assert!(
        reduced_acc > full_acc - 0.15,
        "reduced accuracy {reduced_acc} vs full {full_acc}"
    );
    // The reduced model can also be served.
    let runtime = eugene
        .serve(reduced, &ServeOptions::default(), Some(&train))
        .expect("serve reduced");
    let class = ServiceClass::new("t", Duration::from_secs(10));
    let (_, rx) = runtime.submit(InferenceRequest::new(test.sample(0).to_vec(), class));
    assert!(rx
        .recv_timeout(Duration::from_secs(30))
        .unwrap()
        .is_answered());
    runtime.shutdown();
}

#[test]
fn tight_deadlines_trigger_the_daemon_but_never_lose_requests() {
    let mut parts = datasets(11, &[400, 20]).into_iter();
    let (train, stream) = (parts.next().unwrap(), parts.next().unwrap());
    let mut eugene = Eugene::new(13);
    let model = quick_train(&mut eugene, &train);
    let runtime = eugene
        .serve(
            model,
            &ServeOptions {
                scheduler: SchedulerKind::Fifo,
                num_workers: 1,
                confidence_threshold: 1.0,
                ..ServeOptions::default()
            },
            None,
        )
        .expect("serve");
    // Sub-millisecond deadline with one worker and 20 queued requests:
    // most must be killed, every one must still answer.
    let class = ServiceClass::new("instant", Duration::from_micros(800));
    let receivers: Vec<_> = (0..stream.len())
        .map(|i| {
            runtime.submit(InferenceRequest::new(
                stream.sample(i).to_vec(),
                class.clone(),
            ))
        })
        .collect();
    let mut expired = 0;
    for (_, rx) in receivers {
        let response = rx.recv_timeout(Duration::from_secs(30)).expect("response");
        if response.expired {
            expired += 1;
        }
    }
    assert!(
        expired > 0,
        "the deadline daemon should fire under overload"
    );
    runtime.shutdown();
}
