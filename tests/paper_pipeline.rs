//! The paper's full §III pipeline as one integration test: train a staged
//! network, calibrate its confidence, fit the GP-compressed confidence
//! curves, and schedule a contended workload — asserting the qualitative
//! claims each component contributes.

use eugene::calibrate::{ece, EntropyCalibrator};
use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::nn::{evaluate_staged, StagedNetwork, StagedNetworkConfig, TrainConfig, Trainer};
use eugene::sched::{
    Fifo, PwlCurvePredictor, RtDeepIot, Scheduler, SimConfig, Simulation, TaskProfile,
};
use eugene::tensor::seeded_rng;

struct Pipeline {
    network: StagedNetwork,
    calib: eugene::data::Dataset,
    test: eugene::data::Dataset,
}

fn build_pipeline() -> Pipeline {
    let mut rng = seeded_rng(71);
    let gen = SyntheticImages::new(
        SyntheticImagesConfig {
            num_classes: 6,
            dim: 16,
            paired_parity: true,
            easy_fraction: 0.6,
            medium_fraction: 0.25,
            noise: 0.3,
        },
        &mut rng,
    );
    let (train, _) = gen.generate(700, &mut rng);
    let (calib, _) = gen.generate(400, &mut rng);
    let (test, _) = gen.generate(500, &mut rng);
    let arch = StagedNetworkConfig {
        input_dim: train.dim(),
        num_classes: train.num_classes(),
        stage_widths: vec![vec![6], vec![16], vec![32, 32]],
        dropout: 0.1,
        input_skip: true,
    };
    let mut network = StagedNetwork::new(&arch, &mut seeded_rng(72));
    Trainer::new(TrainConfig {
        epochs: 60,
        learning_rate: 1.5e-3,
        ..TrainConfig::default()
    })
    .fit(&mut network, &train, &mut seeded_rng(73));
    Pipeline {
        network,
        calib,
        test,
    }
}

#[test]
fn staged_training_calibration_prediction_and_scheduling_compose() {
    let mut pipeline = build_pipeline();

    // 1. Depth buys accuracy (the premise of staged scheduling).
    let evals = evaluate_staged(&pipeline.network, &pipeline.test);
    assert!(
        evals[2].accuracy > evals[0].accuracy + 0.03,
        "stage 3 ({:.3}) should beat stage 1 ({:.3})",
        evals[2].accuracy,
        evals[0].accuracy
    );

    // 2. Calibration drives test-set ECE down without touching accuracy.
    let ece_of = |net: &StagedNetwork, data: &eugene::data::Dataset| -> f64 {
        evaluate_staged(net, data)
            .iter()
            .map(|e| ece(&e.confidences, &e.correct, 10))
            .sum::<f64>()
            / 3.0
    };
    let before = ece_of(&pipeline.network, &pipeline.test);
    let acc_before: Vec<f64> = evals.iter().map(|e| e.accuracy).collect();
    EntropyCalibrator::default().calibrate(
        &mut pipeline.network,
        &pipeline.calib,
        &mut seeded_rng(74),
    );
    let after = ece_of(&pipeline.network, &pipeline.test);
    let acc_after: Vec<f64> = evaluate_staged(&pipeline.network, &pipeline.test)
        .iter()
        .map(|e| e.accuracy)
        .collect();
    assert!(
        after < before,
        "calibration should reduce test ECE: {before:.3} -> {after:.3}"
    );
    assert_eq!(
        acc_before, acc_after,
        "scale calibration preserves accuracy"
    );

    // 3. GP-compressed confidence curves fit on calibration data predict
    //    monotone refinement.
    let calib_evals = evaluate_staged(&pipeline.network, &pipeline.calib);
    let curves: Vec<Vec<f32>> = (0..pipeline.calib.len())
        .map(|i| calib_evals.iter().map(|e| e.confidences[i]).collect())
        .collect();
    let predictor = PwlCurvePredictor::fit(&curves, 10).expect("fit predictor");
    use eugene::sched::ConfidencePredictor;
    let low_gain = predictor.predict(&[0.35], 1) - 0.35;
    let high_gain = predictor.predict(&[0.95], 1) - 0.95;
    assert!(
        low_gain > high_gain,
        "uncertain tasks must promise larger gains ({low_gain:.3} vs {high_gain:.3})"
    );

    // 4. Under contention, utility-maximizing scheduling beats FIFO on
    //    service accuracy using these profiles and predictor.
    let test_evals = evaluate_staged(&pipeline.network, &pipeline.test);
    let profiles: Vec<TaskProfile> = (0..pipeline.test.len())
        .map(|i| {
            TaskProfile::new(
                test_evals.iter().map(|e| e.confidences[i]).collect(),
                test_evals.iter().map(|e| e.correct[i]).collect(),
            )
        })
        .collect();
    let config = SimConfig {
        num_workers: 2,
        concurrency: 12,
        deadline_quanta: 6,
        num_classes: pipeline.test.num_classes(),
    };
    let accuracy_of = |sched: &mut dyn Scheduler| -> f64 {
        Simulation::new(config)
            .run(sched, profiles.clone(), &mut seeded_rng(75))
            .service_accuracy()
    };
    let mut rt = RtDeepIot::new(predictor, 1, 1.0 / 6.0);
    let mut fifo = Fifo::new();
    let rt_acc = accuracy_of(&mut rt);
    let fifo_acc = accuracy_of(&mut fifo);
    assert!(
        rt_acc > fifo_acc,
        "RTDeepIoT ({rt_acc:.3}) should beat FIFO ({fifo_acc:.3}) under contention"
    );
}
